"""Shared kernel infrastructure.

* :class:`KernelRun` — the result of a simulated execution: output tensor,
  the memory plan it ran under, pool statistics and the cost report.
* :class:`KernelCostModel` — the analytic latency/energy model shared by all
  kernels, with the calibration constants documented in DESIGN.md:

  - vMCU kernels fully unroll the inner reduction loop, so their MAC stream
    runs at the ISA rate (``VMCU_COMPUTE_EFFICIENCY = 1.0``);
  - TinyEngine unrolls to a fixed depth (16) and keeps per-tile loop
    bookkeeping, modeled as a 1.35x cycle multiplier on compute
    (``TINYENGINE_COMPUTE_EFFICIENCY``), and it never bypasses im2col, which
    adds one read+write round-trip of the input per convolution.

Both constants were fixed once while calibrating Table 3's ~1.03x latency
ratio and are used unchanged by every experiment.
"""

from __future__ import annotations

import os
import threading
import weakref
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.planner import LayerPlan
from repro.core.pool import CircularSegmentPool, PoolStats
from repro.errors import KernelError
from repro.mcu.device import DeviceProfile
from repro.mcu.profiler import CostReport, Profiler

__all__ = [
    "KernelRun",
    "KernelCostModel",
    "ExecutionBackend",
    "SimulateBackend",
    "register_execution_backend",
    "get_execution_backend",
    "execution_backends",
    "cached_pack",
    "memoized_default_plan",
    "pack_i32",
    "pack_f64",
    "VMCU_COMPUTE_EFFICIENCY",
    "TINYENGINE_COMPUTE_EFFICIENCY",
    "TINYENGINE_UNROLL_DEPTH",
]

#: vMCU fully unrolls innermost reduction loops (Section 7.2).
VMCU_COMPUTE_EFFICIENCY = 1.0
#: TinyEngine unrolls to a fixed depth and pays loop bookkeeping, address
#: arithmetic and pipeline stalls around the MAC stream.  1.6 effective
#: issue slots per SMLAD is the one calibration constant fitted to land
#: Table 3's fused-vs-unfused latency ratio near the paper's ~1.03x; it is
#: then used unchanged for Figures 8.
TINYENGINE_COMPUTE_EFFICIENCY = 1.6
#: TinyEngine's predefined unroll depth (Section 7.2 mentions 16).
TINYENGINE_UNROLL_DEPTH = 16


@dataclass
class KernelRun:
    """Result of one kernel execution (any backend)."""

    output: np.ndarray
    plan: LayerPlan | object
    pool_stats: PoolStats
    report: CostReport


# --------------------------------------------------------------------------- #
# execution backends
# --------------------------------------------------------------------------- #
class ExecutionBackend:
    """One way of executing planned kernels.

    The shipped backends are ``"simulate"`` (the per-segment pool replay
    that audits every RAMLoad/RAMStore/RAMFree against the plan),
    ``"fast"`` (vectorized im2col + int32-GEMM NumPy execution with the pool
    traffic and profiler costs derived analytically from the plan) and
    ``"batched"`` (the serving path: stacked GEMMs across a request batch
    with per-plan cost-template replay).  All produce bit-identical outputs
    and cost reports; the latter two trade the per-segment race auditing
    for orders-of-magnitude lower wall clock.

    A backend implements one method per kernel family, each returning a
    :class:`KernelRun`, plus :meth:`run_pipeline` for whole-chain execution
    and :meth:`run_pipeline_batch` for many-input dispatch.  New backends
    subclass this and register via :func:`register_execution_backend`.
    """

    name = "abstract"

    def fully_connected(self, kernel, x, w, mult, **kw) -> KernelRun:
        raise NotImplementedError

    def pointwise(self, kernel, x, w, mult, **kw) -> KernelRun:
        raise NotImplementedError

    def conv2d(self, kernel, x, w, mult, **kw) -> KernelRun:
        raise NotImplementedError

    def depthwise(self, kernel, x, w, mult, **kw) -> KernelRun:
        raise NotImplementedError

    def avgpool(self, kernel, x, mult, **kw) -> KernelRun:
        raise NotImplementedError

    def bottleneck(
        self, kernel, x, w_expand, w_dw, w_project, mults, **kw
    ) -> KernelRun:
        raise NotImplementedError

    def run_pipeline(self, pipeline, plan, x, *, strict=True):
        raise NotImplementedError

    def run_pipeline_batch(self, pipeline, plan, xs, *, strict=True):
        """Run many inputs against one plan; returns one result per input.

        The default dispatches per request; backends that can amortize
        across the batch (one stacked GEMM per stage, shared cost
        template) override this — see ``repro.kernels.batched``.
        """
        return [
            self.run_pipeline(pipeline, plan, x, strict=strict) for x in xs
        ]


class SimulateBackend(ExecutionBackend):
    """The audit-grade backend: per-segment replay in the circular pool.

    Every RAMLoad/RAMStore/RAMFree is executed against the pool's slot
    state machine, so plan violations surface as
    :class:`~repro.errors.SegmentRaceError` instead of silent corruption.
    """

    name = "simulate"

    def fully_connected(self, kernel, x, w, mult, **kw):
        return kernel._run_simulate(x, w, mult, **kw)

    def pointwise(self, kernel, x, w, mult, **kw):
        return kernel._run_simulate(x, w, mult, **kw)

    def conv2d(self, kernel, x, w, mult, **kw):
        return kernel._run_simulate(x, w, mult, **kw)

    def depthwise(self, kernel, x, w, mult, **kw):
        return kernel._run_simulate(x, w, mult, **kw)

    def avgpool(self, kernel, x, mult, **kw):
        return kernel._run_simulate(x, mult, **kw)

    def bottleneck(self, kernel, x, w_expand, w_dw, w_project, mults, **kw):
        return kernel._run_simulate(x, w_expand, w_dw, w_project, mults, **kw)

    def run_pipeline(self, pipeline, plan, x, *, strict=True):
        return pipeline._run_simulate(plan, x, strict=strict)


_EXECUTION_BACKENDS: dict[str, ExecutionBackend] = {}


def register_execution_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Register ``backend`` under ``backend.name`` (last registration wins)."""
    if not backend.name or backend.name == "abstract":
        raise KernelError(f"backend {backend!r} needs a concrete name")
    _EXECUTION_BACKENDS[backend.name] = backend
    return backend


def get_execution_backend(name: str) -> ExecutionBackend:
    """Look up a registered backend; error lists the available names."""
    try:
        return _EXECUTION_BACKENDS[name]
    except KeyError:
        raise KernelError(
            f"unknown execution backend {name!r}; "
            f"available: {sorted(_EXECUTION_BACKENDS)}"
        ) from None


def execution_backends() -> tuple[str, ...]:
    """Names of all registered execution backends."""
    return tuple(sorted(_EXECUTION_BACKENDS))


register_execution_backend(SimulateBackend())


# --------------------------------------------------------------------------- #
# packed-weight cache
# --------------------------------------------------------------------------- #
#: (id(w), seg_bytes, packer name) -> (weakref to w, content digest, packed
#: array).  Repeated ``Pipeline.run`` calls on a compiled plan hand the
#: *same* weight arrays to the kernels every time; packing is pure, so the
#: re-layout is done once.  The weakref guards against id() reuse after
#: garbage collection and evicts the entry when the source array dies; the
#: digest guards against in-place mutation of a cached array (a hit is
#: served only if the bytes still match, so stale packs are impossible).
_PACK_CACHE: dict[
    tuple[int, int, str], tuple[weakref.ref, int, np.ndarray]
] = {}
#: guards _PACK_CACHE: the dispatcher's sharded workers all pack through
#: this one memo, so lookup + insert must be atomic.  Held across the
#: pack itself — packing is a single relayout copy, and serializing it
#: guarantees each (array, seg, packer) triple is packed exactly once
#: instead of racing workers burning the copy N times.
_PACK_LOCK = threading.Lock()


def cached_pack(
    w: np.ndarray, seg: int, packer: Callable[[np.ndarray, int], np.ndarray]
) -> np.ndarray:
    """Memoized ``packer(w, seg)`` keyed by ``(id(w), seg)``.

    The packed array is shared across runs and must be treated as
    read-only by callers (the kernels only ever read weight blocks; the
    returned array is marked non-writeable).  A cache hit is validated
    against a content digest of the source array — one C-speed pass,
    versus the several reshape/transpose/copy passes of packing — so
    callers that mutate a weight array in place simply trigger a re-pack
    instead of receiving stale weights.  Views are packed fresh every
    call (their ids belong to throwaway wrapper objects).  Thread-safe:
    concurrent serving workers may hammer the same weights; each distinct
    source array is packed once.
    """
    if w.base is not None:
        return packer(w, seg)
    key = (id(w), seg, packer.__name__)
    digest = hash(w.tobytes())
    with _PACK_LOCK:
        hit = _PACK_CACHE.get(key)
        if hit is not None:
            ref, cached_digest, packed = hit
            if ref() is w and cached_digest == digest:
                return packed
        packed = packer(w, seg)
        packed.setflags(write=False)

        def _evict(_ref, key=key):
            _PACK_CACHE.pop(key, None)

        try:
            ref = weakref.ref(w, _evict)
        except TypeError:
            # not weakref-able: skip the cache, stay correct
            return packed
        _PACK_CACHE[key] = (ref, digest, packed)
        return packed


def pack_i32(w: np.ndarray, seg: int) -> np.ndarray:
    """Promote int8 weights to the int32 GEMM operand, once per array.

    Run through :func:`cached_pack` so repeated runs against the same
    weights skip the promotion copy entirely, while in-place mutation of
    the int8 source (digest mismatch) or its death (weakref eviction)
    invalidates the entry.  ``seg`` is unused — the promotion is
    segment-independent — but kept so the packer slots into the cache's
    ``(id, seg, packer)`` key contract.
    """
    return w.astype(np.int32)


def pack_f64(w: np.ndarray, seg: int) -> np.ndarray:
    """Promote int8 weights to the float64 BLAS GEMM operand.

    Used by the ``"turbo"`` backend: int8 values are exactly
    representable in a double, so the float64 GEMM it feeds is exact
    integer arithmetic (see :mod:`repro.kernels.turbo` for the overflow
    bound).  Same cache contract as :func:`pack_i32`.
    """
    return w.astype(np.float64)


# --------------------------------------------------------------------------- #
# fork safety
# --------------------------------------------------------------------------- #
def _serving_locks() -> list:
    """Every serving-path lock a forked child may take.

    ``fork()`` copies a mutex held by another thread into the child in
    its locked state, where no thread will ever release it — the first
    ``cached_pack`` or template lookup in the child would then deadlock.
    The process-mode dispatcher forks worker pools, so fork must happen
    at a quiescent point for these locks: the before-handler acquires
    them all (waiting out any in-flight serving work), and both
    after-handlers release them again.  All are plain ``Lock``\\ s, so
    the child's release needs no owner check.
    """
    locks = [_PACK_LOCK]
    for backend in _EXECUTION_BACKENDS.values():
        lock = getattr(backend, "_template_lock", None)
        if lock is not None:
            locks.append(lock)
    return locks


def _before_fork() -> None:
    # template locks first, then the pack lock — the same order the
    # serving path nests them (pipeline_template -> cached_pack), so the
    # handler can never deadlock against a worker
    held = _serving_locks()
    for lock in reversed(held):
        lock.acquire()
    _FORK_HELD.append(held)


def _after_fork() -> None:
    if _FORK_HELD:
        for lock in _FORK_HELD.pop():
            lock.release()


_FORK_HELD: list[list] = []

if hasattr(os, "register_at_fork"):
    os.register_at_fork(
        before=_before_fork,
        after_in_parent=_after_fork,
        after_in_child=_after_fork,
    )


def memoized_default_plan(kernel, solve: Callable[[], object]) -> object:
    """Per-kernel memo of the default-configuration plan solve.

    Kernel geometry is immutable after construction, so every kernel's
    ``plan()`` caches its default-planner solve here: standalone
    ``run()`` loops stop re-paying the constraint solver on each call.
    Callers that pass an explicit planner bypass the memo (the solve
    then depends on planner configuration, which this cache ignores).
    """
    cached = getattr(kernel, "_default_plan", None)
    if cached is None:
        cached = solve()
        kernel._default_plan = cached
    return cached


class KernelCostModel:
    """Analytic cost accounting used by ``kernel.cost()`` implementations.

    The model charges four kinds of work to a profiler:

    * MACs at the device SMLAD rate, scaled by a schedule-efficiency factor;
    * SRAM traffic (bytes moved in/out of the pool and workspace);
    * Flash traffic (weight streaming);
    * per-segment overhead: boundary check + modulo for circular addressing
      (vMCU only — tensor-level baselines address tensors linearly).

    It returns a finished :class:`CostReport` so callers can read cycles,
    latency and the energy breakdown.
    """

    def __init__(self, device: DeviceProfile):
        self.device = device

    def report(
        self,
        *,
        macs: int,
        sram_load_bytes: int,
        sram_store_bytes: int,
        flash_bytes: int,
        requant_elements: int,
        segment_ops: int = 0,
        pow2_pool: bool = True,
        efficiency: float = VMCU_COMPUTE_EFFICIENCY,
        unroll_depth: int | None = None,
        extra_copy_bytes: int = 0,
    ) -> CostReport:
        """Build a cost report from aggregate work counts.

        Parameters
        ----------
        segment_ops:
            Number of segment loads/stores/frees performed against the
            circular pool; each costs a boundary check plus (modeled) modulo.
        efficiency:
            Schedule-efficiency multiplier on compute cycles (>= 1 means
            slower than the ISA peak).
        unroll_depth:
            If given, charge one loop branch per ``unroll_depth`` MACs
            (TinyEngine's partial unrolling); ``None`` means fully unrolled.
        extra_copy_bytes:
            Bytes moved by preprocessing copies (im2col), charged as one
            read plus one write plus copy cycles.
        """
        prof = Profiler(self.device)
        prof.count_macs(macs)
        prof.count_sram(sram_load_bytes, store=False)
        prof.count_sram(sram_store_bytes, store=True)
        prof.count_flash(flash_bytes)
        prof.count_requantize(requant_elements)
        if segment_ops:
            prof.count_branch(segment_ops)
            prof.count_modulo(segment_ops, power_of_two=pow2_pool)
        if unroll_depth is not None and unroll_depth > 0:
            prof.count_branch(macs // unroll_depth)
        if extra_copy_bytes:
            prof.count_sram(extra_copy_bytes, store=False)
            prof.count_sram(extra_copy_bytes, store=True)
        if efficiency > 1.0:
            # Schedule inefficiency shows up as extra issue slots around the
            # MAC stream; charge it as generic ALU work.
            prof.count_instr("MOV", (efficiency - 1.0) * macs / 2.0)
        return prof.report()


def make_pool(
    plan,
    device: DeviceProfile | None = None,
    *,
    slack_slots: int = 0,
    strict: bool = True,
    profiler: Profiler | None = None,
) -> CircularSegmentPool:
    """Construct a pool sized exactly to a plan (plus optional slack).

    ``slack_slots`` may be negative in tests that demonstrate that the plan
    is *tight* (one slot less ⇒ race).
    """
    return CircularSegmentPool(
        n_slots=plan.span_slots + slack_slots,
        seg_bytes=plan.seg_bytes,
        strict=strict,
        profiler=profiler,
    )


def last_reader_row(h: int, *, jump: int, offset: int, last_row: int) -> int:
    """Last output row that reads input row ``h`` (receptive-field inverse).

    Output row ``p`` reads input rows ``[p*jump + offset, ...]``, so input
    row ``h`` is last read by ``p = floor((h - offset) / jump)``, clamped to
    the output domain.  Rows never read at all report row ``-1`` (free them
    immediately).
    """
    p = (h - offset) // jump
    if p < 0:
        return -1
    return min(p, last_row)
