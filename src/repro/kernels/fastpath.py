"""Vectorized fast-path execution backend (``execution="fast"``).

The simulate backend replays every RAMLoad/RAMStore/RAMFree against the
circular pool's slot state machine — invaluable for auditing plans, but the
per-segment Python loop makes whole-model inference orders of magnitude
slower than the arithmetic itself.  This backend splits the two concerns the
same way TinyEngine splits analysis from generated kernels:

* **outputs** come from whole-tensor NumPy execution (im2col + int32 GEMM
  with one whole-tensor requantization).  int32 accumulation is associative
  and commutative modulo 2**32 and the requantization pipeline is
  elementwise, so the bits are identical to the simulator's segment-by-
  segment accumulation — the parity tests assert exact equality;
* **costs** come from *vectorized event generation*: the multiset of pool
  events a simulated run would perform (loads, stores, frees, wrap-arounds,
  input/output overlap clobbers, peak live slots) is derived analytically
  from the :class:`~repro.core.planner.LayerPlan` geometry with NumPy
  address arithmetic, then charged to the profiler in bulk.  Every counter
  increment the simulator makes is a multiple of 0.5 (exactly representable
  in a double), so bulk charging reproduces the simulator's
  :class:`~repro.mcu.profiler.CostReport` bit for bit as well.

What the fast path does *not* do is race-check: it trusts the plan.  Use
``execution="simulate"`` when auditing a new planner or segment policy.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.multilayer import compose_receptive_field
from repro.core.pool import PoolStats
from repro.errors import KernelError, ShapeError
from repro.kernels.base import (
    ExecutionBackend,
    KernelRun,
    cached_pack,
    pack_i32,
    register_execution_backend,
)
from repro.mcu.profiler import Profiler
from repro.quant import requantize

__all__ = ["FastBackend"]


# --------------------------------------------------------------------------- #
# address arithmetic
# --------------------------------------------------------------------------- #
def _contig_wraps(start: int, count: int, n_slots: int) -> int:
    """How many addresses in ``[start, start + count)`` wrap (>= n_slots)."""
    if count <= 0:
        return 0
    return max(0, start + count - max(n_slots, start))


def _starts_wraps(starts: np.ndarray, block: int, n_slots: int) -> int:
    """Wrapping addresses over blocks ``[s, s + block)`` for each start."""
    if starts.size == 0 or block <= 0:
        return 0
    starts = starts.astype(np.int64, copy=False)
    return int(
        np.clip(starts + block - np.maximum(n_slots, starts), 0, block).sum()
    )


# --------------------------------------------------------------------------- #
# the event ledger
# --------------------------------------------------------------------------- #
class _EventLedger:
    """Charges one kernel's pool-event totals to a profiler and PoolStats.

    The simulator interleaves tiny ``count_*`` calls with arithmetic; the
    ledger makes the same calls once with the totals.  Placement stores and
    the final read-back are — exactly like the simulator — visible in the
    pool statistics but never charged to the profiler (the previous layer
    paid the placement; the read-back is verification plumbing).
    """

    def __init__(
        self, profiler: Profiler, stats: PoolStats, n_slots: int
    ):
        self.profiler = profiler
        self.stats = stats
        self.n_slots = int(n_slots)
        self.pow2 = (self.n_slots & (self.n_slots - 1)) == 0

    # -- uncharged traffic (stats only) --------------------------------- #
    def place_input(self, base: int, n_segments: int, seg: int) -> None:
        self.stats.stores += n_segments
        self.stats.bytes_stored += n_segments * seg
        self.stats.wraps += _contig_wraps(base, n_segments, self.n_slots)

    def read_back(self, base: int, n_segments: int, seg: int) -> None:
        self.stats.loads += n_segments
        self.stats.bytes_loaded += n_segments * seg
        self.stats.wraps += _contig_wraps(base, n_segments, self.n_slots)

    # -- kernel-phase pool operations ----------------------------------- #
    def pool_ops(
        self, *, loads: int, stores: int, frees: int, wraps: int, seg: int
    ) -> None:
        """Charge ``loads + stores + frees`` slot operations at once."""
        ops = loads + stores + frees
        if ops:
            self.profiler.count_branch(ops)
        if wraps:
            self.profiler.count_modulo(wraps, power_of_two=self.pow2)
            self.stats.wraps += wraps
        if loads:
            self.profiler.count_sram(loads * seg, store=False)
            self.stats.loads += loads
            self.stats.bytes_loaded += loads * seg
        if stores:
            self.profiler.count_sram(stores * seg, store=True)
            self.stats.stores += stores
            self.stats.bytes_stored += stores * seg
        self.stats.frees += frees

    # -- input/output overlap accounting -------------------------------- #
    def overlap(
        self,
        *,
        in_base: int,
        in_segments: int,
        out_base: int,
        out_segments: int,
        free_times: np.ndarray,
        store_times: np.ndarray,
    ) -> None:
        """Replay the slot lifecycle analytically.

        ``free_times[i]`` / ``store_times[o]`` give the program-order
        position of input segment ``i``'s RAMFree and output segment
        ``o``'s RAMStore.  An output stored onto the slot of a still-live
        input segment *clobbers* it (the overlap mechanism); the later
        free of that input is a stale no-op.  Peak live slots follow from
        the merged event timeline.  Both quantities match the simulator's
        pool statistics exactly.
        """
        free_times = np.asarray(free_times, dtype=np.float64)
        store_times = np.asarray(store_times, dtype=np.float64)
        if free_times.shape != (in_segments,):
            raise KernelError("free_times must cover every input segment")
        if store_times.shape != (out_segments,):
            raise KernelError("store_times must cover every output segment")
        out_ids = np.arange(out_segments, dtype=np.int64)
        i_of_o = (out_base + out_ids - in_base) % self.n_slots
        valid = i_of_o < in_segments
        death = free_times.copy()
        vi = i_of_o[valid]
        clobbered = store_times[valid] < death[vi]
        death[vi[clobbered]] = store_times[valid][clobbered]
        times = np.concatenate([store_times, death])
        deltas = np.concatenate(
            [np.ones(out_segments), -np.ones(in_segments)]
        )
        # process deaths before stores at equal timestamps: a clobbering
        # store replaces a live slot atomically (live count unchanged)
        order = np.lexsort((deltas, times))
        traj = np.cumsum(deltas[order])
        peak = in_segments + (int(traj.max()) if traj.size else 0)
        peak = max(peak, in_segments)
        self.stats.clobbers += int(clobbered.sum())
        self.stats.peak_live = max(self.stats.peak_live, peak)


def _setup(kernel_plan, device, profiler, stats, n_slots, pool):
    """Shared prologue: reject pools, default the profiler/stats/slots."""
    if pool is not None:
        raise KernelError(
            "the fast backend executes without a pool; pass pool= only "
            "with execution='simulate'"
        )
    profiler = profiler if profiler is not None else Profiler(device)
    stats = stats if stats is not None else PoolStats()
    n_slots = n_slots if n_slots is not None else kernel_plan.span_slots
    return profiler, stats, _EventLedger(profiler, stats, n_slots)


def _ceil_div(a: np.ndarray, b: int) -> np.ndarray:
    """Elementwise ceiling division for (possibly negative) integers."""
    return -((-a) // b)


def _i32(w: np.ndarray) -> np.ndarray:
    """Cache-amortized int32 view of an int8 weight array."""
    return cached_pack(w, 0, pack_i32)


# --------------------------------------------------------------------------- #
# the backend
# --------------------------------------------------------------------------- #
class FastBackend(ExecutionBackend):
    """im2col + int32-GEMM execution with analytic event generation."""

    name = "fast"
    #: packers the serving layer warms at session open so the first
    #: request pays no weight-promotion cost (overridden by backends
    #: whose arithmetic needs a different operand layout)
    weight_packers = (pack_i32,)

    # ------------------------------------------------------------------ #
    # batch-axis numeric kernels — the single source of numeric truth
    # ------------------------------------------------------------------ #
    # Every pipeline-stage family's whole-tensor arithmetic lives here
    # once, over a leading batch axis.  The per-kernel fast methods below
    # call them with a batch of one; the batched serving backend stacks
    # whole request batches through the same code.  int32 accumulation
    # wraps modulo 2**32 independently of summation order and each output
    # row depends only on its own input row, so batch size never changes
    # the bits.
    #
    # The two arithmetic leaves — the stacked GEMM and the requantize —
    # are overridable hooks so a backend can swap the *implementation*
    # (the "turbo" backend routes them through an exact float64 BLAS
    # GEMM and a banded-exact requantize) without duplicating any of the
    # stage structure; bit-exactness of an override is property-tested.
    def _gemm(
        self, x2d: np.ndarray, w: np.ndarray,
        w2d_shape: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """``int8[M, K] @ int8[K, N]`` accumulated exactly as int32.

        ``w2d_shape`` reshapes the *packed* operand (a view — packing is
        elementwise, so it commutes with reshape); passing the base array
        plus a shape instead of ``w.reshape(...)`` keeps the pack-cache
        key stable, since ``cached_pack`` refuses to cache views.
        """
        wp = _i32(w)
        if w2d_shape is not None:
            wp = wp.reshape(w2d_shape)
        return x2d.astype(np.int32) @ wp

    def _requant(self, acc: np.ndarray, mult) -> np.ndarray:
        """Scale int32 accumulators into int8 (gemmlowp pipeline)."""
        return requantize(acc, mult)

    def _pointwise_batch(self, kern, xb, w, mult):
        bsz = xb.shape[0]
        if xb.shape[1:] != (kern.h, kern.w, kern.c):
            raise ShapeError(
                f"batch must be int8[B,{kern.h},{kern.w},{kern.c}], "
                f"got {xb.shape}"
            )
        st = kern.stride
        xs = xb[:, ::st, ::st, :]
        acc = self._gemm(xs.reshape(bsz * kern.p * kern.q, kern.c), w)
        return self._requant(acc, mult).reshape(bsz, kern.p, kern.q, kern.k)

    def _bottleneck_batch(self, kern, xb, w_expand, w_dw, w_project, mults):
        spec = kern.spec
        bsz = xb.shape[0]
        if xb.shape[1:] != (spec.hw, spec.hw, spec.c_in):
            raise ShapeError(
                f"batch must be int8[B,{spec.hw},{spec.hw},{spec.c_in}], "
                f"got {xb.shape}"
            )
        m1, mdw, m2 = mults
        s1, s2, s3 = spec.strides
        pad, k = spec.padding, spec.kernel
        hb = spec.mid_spatial()
        p_out = spec.spatial_out()
        hc = (hb + 2 * pad - k) // s2 + 1

        b = self._requant(
            self._gemm(
                xb[:, ::s1, ::s1, :].reshape(bsz * hb * hb, spec.c_in),
                w_expand,
            ),
            m1,
        ).reshape(bsz, hb, hb, spec.c_mid)
        # pre-promote the padded activation once: the k*k tap loop below
        # then slices int32 directly instead of casting every window view
        bp = np.zeros(
            (bsz, hb + 2 * pad, hb + 2 * pad, spec.c_mid), dtype=np.int32
        )
        bp[:, pad : pad + hb, pad : pad + hb] = b
        wdw32 = _i32(w_dw)
        acc_c = np.zeros((bsz, hc, hc, spec.c_mid), dtype=np.int32)
        for dr in range(k):
            for ds in range(k):
                acc_c += (
                    bp[
                        :,
                        dr : dr + (hc - 1) * s2 + 1 : s2,
                        ds : ds + (hc - 1) * s2 + 1 : s2,
                    ]
                    * wdw32[dr, ds]
                )
        c_t = self._requant(acc_c, mdw)[:, ::s3, ::s3, :]
        acc_d = self._gemm(
            c_t.reshape(bsz * p_out * p_out, spec.c_mid), w_project
        )
        d = self._requant(acc_d, m2).reshape(bsz, p_out, p_out, spec.c_out)
        if spec.has_residual:
            return np.clip(
                d.astype(np.int16) + xb.astype(np.int16), -128, 127
            ).astype(np.int8)
        return d

    def _avgpool_batch(self, kern, xb, mult):
        if xb.shape[1:] != (kern.h, kern.w, kern.c):
            raise ShapeError(
                f"batch must be int8[B,{kern.h},{kern.w},{kern.c}], "
                f"got {xb.shape}"
            )
        acc = xb.astype(np.int32).sum(axis=(1, 2), dtype=np.int32)
        return self._requant(acc, mult)

    def _dense_batch(self, kern, xb, w, mult):
        bsz = xb.shape[0]
        x2 = xb.reshape(bsz * kern.m, -1)
        if x2.shape != (bsz * kern.m, kern.k):
            raise ShapeError(
                f"batch must flatten to int8[B,{kern.m},{kern.k}], "
                f"got {xb.shape}"
            )
        out = self._requant(self._gemm(x2, w), mult)
        # keep the runtime's [M, N] row convention per request
        return out.reshape(bsz, kern.m, kern.n)

    # ------------------------------------------------------------------ #
    def fully_connected(
        self, kernel, x, w, mult, *, device, plan, pool=None, strict=True,
        in_name="In", out_name="Out", place_input=True, profiler=None,
        stats=None, n_slots=None,
    ) -> KernelRun:
        if w.shape != (kernel.k, kernel.n) or w.dtype != np.int8:
            raise ShapeError(f"weight must be int8[{kernel.k},{kernel.n}]")
        if x.shape != (kernel.m, kernel.k) or x.dtype != np.int8:
            raise ShapeError(
                f"input must be int8[{kernel.m},{kernel.k}], got {x.shape}"
            )
        plan = plan or kernel.plan()
        profiler, stats, led = _setup(
            plan, device, profiler, stats, n_slots, pool
        )
        base = profiler.snapshot()
        seg = plan.seg_bytes
        m, ks, ns = kernel.m, kernel.ks, kernel.ns

        out = self._dense_batch(kernel, x[None], w, mult)[0]

        if place_input:
            led.place_input(plan.in_base, m * ks, seg)
        loads, stores, frees = m * ns * ks, m * ns, m * ks
        wraps = (
            ns * _contig_wraps(plan.in_base, m * ks, led.n_slots)
            + _contig_wraps(plan.out_base, stores, led.n_slots)
            + _contig_wraps(plan.in_base, frees, led.n_slots)
        )
        led.pool_ops(
            loads=loads, stores=stores, frees=frees, wraps=wraps, seg=seg
        )
        profiler.count_macs(loads * seg * seg)
        profiler.count_flash(loads * seg * seg)
        profiler.count_requantize(m * kernel.n)
        led.read_back(plan.out_base, stores, seg)
        led.overlap(
            in_base=plan.in_base, in_segments=m * ks,
            out_base=plan.out_base, out_segments=m * ns,
            free_times=np.repeat(np.arange(m) + 0.5, ks),
            store_times=np.repeat(np.arange(m, dtype=np.float64), ns),
        )
        return KernelRun(
            output=out, plan=plan, pool_stats=stats,
            report=profiler.report(since=base),
        )

    # ------------------------------------------------------------------ #
    def pointwise(
        self, kernel, x, w, mult, *, device, plan, pool=None, strict=True,
        in_name="In", out_name="Out", place_input=True, profiler=None,
        stats=None, n_slots=None,
    ) -> KernelRun:
        h, wd, c, kch = kernel.h, kernel.w, kernel.c, kernel.k
        if x.shape != (h, wd, c) or x.dtype != np.int8:
            raise ShapeError(f"input must be int8[{h},{wd},{c}], got {x.shape}")
        if w.shape != (c, kch) or w.dtype != np.int8:
            raise ShapeError(f"weight must be int8[{c},{kch}]")
        plan = plan or kernel.plan()
        profiler, stats, led = _setup(
            plan, device, profiler, stats, n_slots, pool
        )
        base = profiler.snapshot()
        seg = plan.seg_bytes
        st = kernel.stride
        p, q, ca, ce = kernel.p, kernel.q, kernel.ca, kernel.ce

        out = self._pointwise_batch(kernel, x[None], w, mult)[0]

        if place_input:
            led.place_input(plan.in_base, h * wd * ca, seg)
        loads = p * q * ce * ca
        stores = p * q * ce
        frees = h * wd * ca
        # one contiguous run of ca addresses per read pixel, repeated per
        # output-channel segment
        lin = (
            (np.arange(p, dtype=np.int64) * st * wd)[:, None]
            + np.arange(q, dtype=np.int64) * st
        ).ravel()
        wraps = (
            ce * _starts_wraps(plan.in_base + lin * ca, ca, led.n_slots)
            + _contig_wraps(plan.out_base, stores, led.n_slots)
            + _contig_wraps(plan.in_base, frees, led.n_slots)
        )
        led.pool_ops(
            loads=loads, stores=stores, frees=frees, wraps=wraps, seg=seg
        )
        profiler.count_macs(loads * seg * seg)
        profiler.count_flash(loads * seg * seg)
        profiler.count_requantize(p * q * kch)
        led.read_back(plan.out_base, stores, seg)

        # free schedule: pixel L is released by the first output pixel
        # whose read cursor has passed it (stride > 1 skips pixels; the
        # trailing sweep frees them after the loop)
        lp = np.arange(h * wd, dtype=np.int64)
        p_min = np.maximum(0, _ceil_div(lp - (q - 1) * st, st * wd))
        in_loop = p_min <= p - 1
        q_min = np.zeros_like(lp)
        q_min[in_loop] = np.maximum(
            0, _ceil_div(lp[in_loop] - p_min[in_loop] * st * wd, st)
        )
        pix_free = np.where(
            in_loop, p_min * q + q_min + 0.5, float(p * q)
        )
        led.overlap(
            in_base=plan.in_base, in_segments=frees,
            out_base=plan.out_base, out_segments=stores,
            free_times=np.repeat(pix_free, ca),
            store_times=np.repeat(np.arange(p * q, dtype=np.float64), ce),
        )
        return KernelRun(
            output=out, plan=plan, pool_stats=stats,
            report=profiler.report(since=base),
        )

    # ------------------------------------------------------------------ #
    def conv2d(
        self, kernel, x, w, mult, *, device, plan, pool=None, strict=True,
        profiler=None, stats=None, n_slots=None,
    ) -> KernelRun:
        h, wd, c, kch = kernel.h, kernel.w, kernel.c, kernel.k
        r, st, pad = kernel.r, kernel.stride, kernel.padding
        if x.shape != (h, wd, c) or x.dtype != np.int8:
            raise ShapeError(f"input must be int8[{h},{wd},{c}], got {x.shape}")
        if w.shape != (r, r, c, kch) or w.dtype != np.int8:
            raise ShapeError(f"weight must be int8[{r},{r},{c},{kch}]")
        plan = plan or kernel.plan()
        profiler, stats, led = _setup(
            plan, device, profiler, stats, n_slots, pool
        )
        base = profiler.snapshot()
        seg = plan.seg_bytes
        p, q, ca, ce = kernel.p, kernel.q, kernel.ca, kernel.ce

        if r == 1 and pad == 0:
            # 1x1 convolution: im2col is the identity, so skip the padded
            # copy and the window-view transpose entirely
            cols = np.ascontiguousarray(x[::st, ::st]).reshape(p * q, c)
        else:
            xp = np.zeros((h + 2 * pad, wd + 2 * pad, c), dtype=np.int8)
            xp[pad : pad + h, pad : pad + wd] = x
            win = sliding_window_view(xp, (r, r), axis=(0, 1))[::st, ::st]
            cols = (
                win.transpose(0, 1, 3, 4, 2).reshape(p * q, r * r * c)
            )
        acc = self._gemm(cols, w, (r * r * c, kch))
        out = self._requant(acc, mult).reshape(p, q, kch)

        led.place_input(plan.in_base, h * wd * ca, seg)
        # padding clips window taps: valid row/column tap counts are
        # separable across the two spatial axes
        row0 = np.arange(p, dtype=np.int64) * st - pad
        col0 = np.arange(q, dtype=np.int64) * st - pad
        hh = row0[:, None] + np.arange(r, dtype=np.int64)[None, :]
        ww = col0[:, None] + np.arange(r, dtype=np.int64)[None, :]
        hh = hh[(hh >= 0) & (hh < h)]
        ww = ww[(ww >= 0) & (ww < wd)]
        loads = int(hh.size) * int(ww.size) * ca * ce
        stores = p * q * ce
        frees = h * wd * ca
        starts = plan.in_base + (
            np.add.outer(hh * wd, ww) * ca
        ).ravel()
        wraps = (
            ce * _starts_wraps(starts, ca, led.n_slots)
            + _contig_wraps(plan.out_base, stores, led.n_slots)
            + _contig_wraps(plan.in_base, frees, led.n_slots)
        )
        led.pool_ops(
            loads=loads, stores=stores, frees=frees, wraps=wraps, seg=seg
        )
        profiler.count_macs(loads * seg * seg)
        profiler.count_flash(loads * seg * seg)
        profiler.count_requantize(p * q * kch)
        led.read_back(plan.out_base, stores, seg)

        # input rows die after the output row that last reads them
        p_free = np.minimum((np.arange(h, dtype=np.int64) + pad) // st, p - 1)
        led.overlap(
            in_base=plan.in_base, in_segments=frees,
            out_base=plan.out_base, out_segments=stores,
            free_times=np.repeat(p_free * q + q - 0.5, wd * ca),
            store_times=np.repeat(np.arange(p * q, dtype=np.float64), ce),
        )
        return KernelRun(
            output=out, plan=plan, pool_stats=stats,
            report=profiler.report(since=base),
        )

    # ------------------------------------------------------------------ #
    def depthwise(
        self, kernel, x, w, mult, *, device, plan, pool=None, strict=True,
        profiler=None, stats=None, n_slots=None,
    ) -> KernelRun:
        h, wd, c = kernel.h, kernel.w, kernel.c
        r, st, pad = kernel.r, kernel.stride, kernel.padding
        if x.shape != (h, wd, c) or x.dtype != np.int8:
            raise ShapeError(f"input must be int8[{h},{wd},{c}], got {x.shape}")
        if w.shape != (r, r, c) or w.dtype != np.int8:
            raise ShapeError(f"weight must be int8[{r},{r},{c}]")
        plan = plan or kernel.plan()
        profiler, stats, led = _setup(
            plan, device, profiler, stats, n_slots, pool
        )
        base = profiler.snapshot()
        seg = plan.seg_bytes
        p, q = kernel.p, kernel.q

        xp = np.zeros((h + 2 * pad, wd + 2 * pad, c), dtype=np.int8)
        xp[pad : pad + h, pad : pad + wd] = x
        w32 = w.astype(np.int32)
        acc = np.zeros((p, q, c), dtype=np.int32)
        for dr in range(r):
            for ds in range(r):
                acc += (
                    xp[
                        dr : dr + (p - 1) * st + 1 : st,
                        ds : ds + (q - 1) * st + 1 : st,
                    ].astype(np.int32)
                    * w32[dr, ds]
                )
        out = requantize(acc, mult)

        led.place_input(plan.in_base, h * wd, seg)
        row0 = np.arange(p, dtype=np.int64) * st - pad
        col0 = np.arange(q, dtype=np.int64) * st - pad
        hh = row0[:, None] + np.arange(r, dtype=np.int64)[None, :]
        ww = col0[:, None] + np.arange(r, dtype=np.int64)[None, :]
        hh = hh[(hh >= 0) & (hh < h)]
        ww = ww[(ww >= 0) & (ww < wd)]
        loads = int(hh.size) * int(ww.size)
        stores = p * q
        frees = h * wd
        addrs = plan.in_base + np.add.outer(hh * wd, ww).ravel()
        wraps = (
            int((addrs >= led.n_slots).sum())
            + _contig_wraps(plan.out_base, stores, led.n_slots)
            + _contig_wraps(plan.in_base, frees, led.n_slots)
        )
        led.pool_ops(
            loads=loads, stores=stores, frees=frees, wraps=wraps, seg=seg
        )
        profiler.count_macs(loads * c)
        profiler.count_flash(loads * c)
        profiler.count_requantize(p * q * c)
        led.read_back(plan.out_base, stores, seg)

        p_free = np.minimum((np.arange(h, dtype=np.int64) + pad) // st, p - 1)
        led.overlap(
            in_base=plan.in_base, in_segments=frees,
            out_base=plan.out_base, out_segments=stores,
            free_times=np.repeat(p_free * q + q - 0.5, wd),
            store_times=np.arange(p * q, dtype=np.float64),
        )
        return KernelRun(
            output=out, plan=plan, pool_stats=stats,
            report=profiler.report(since=base),
        )

    # ------------------------------------------------------------------ #
    def avgpool(
        self, kernel, x, mult, *, device, plan, pool=None, strict=True,
        in_name="In", out_name="Out", place_input=True, profiler=None,
        stats=None, n_slots=None,
    ) -> KernelRun:
        h, wd, c = kernel.h, kernel.w, kernel.c
        if x.shape != (h, wd, c) or x.dtype != np.int8:
            raise ShapeError(f"input must be int8[{h},{wd},{c}], got {x.shape}")
        plan = plan or kernel.plan()
        profiler, stats, led = _setup(
            plan, device, profiler, stats, n_slots, pool
        )
        base = profiler.snapshot()
        seg = plan.seg_bytes
        ca = kernel.ca
        n_px = h * wd

        out = self._avgpool_batch(kernel, x[None], mult)[0]

        if place_input:
            led.place_input(plan.in_base, n_px * ca, seg)
        loads = frees = n_px * ca
        stores = ca
        wraps = (
            2 * _contig_wraps(plan.in_base, n_px * ca, led.n_slots)
            + _contig_wraps(plan.out_base, ca, led.n_slots)
        )
        led.pool_ops(
            loads=loads, stores=stores, frees=frees, wraps=wraps, seg=seg
        )
        profiler.count_instr("SADD16", n_px * ca * seg / 2.0)
        profiler.count_requantize(c)
        led.read_back(plan.out_base, ca, seg)
        led.overlap(
            in_base=plan.in_base, in_segments=n_px * ca,
            out_base=plan.out_base, out_segments=ca,
            free_times=np.repeat(np.arange(n_px) + 0.5, ca),
            store_times=np.full(ca, float(n_px)),
        )
        return KernelRun(
            output=out, plan=plan, pool_stats=stats,
            report=profiler.report(since=base),
        )

    # ------------------------------------------------------------------ #
    def bottleneck(
        self, kernel, x, w_expand, w_dw, w_project, mults, *, device, plan,
        pool=None, strict=True, in_name="A", out_name="E", place_input=True,
        profiler=None, stats=None, n_slots=None,
    ) -> KernelRun:
        spec = kernel.spec
        if x.shape != (spec.hw, spec.hw, spec.c_in) or x.dtype != np.int8:
            raise ShapeError(
                f"input must be int8[{spec.hw},{spec.hw},{spec.c_in}], "
                f"got {x.shape}"
            )
        if w_expand.shape != (spec.c_in, spec.c_mid):
            raise ShapeError(f"w_expand must be [{spec.c_in},{spec.c_mid}]")
        if w_dw.shape != (spec.kernel, spec.kernel, spec.c_mid):
            raise ShapeError(
                f"w_dw must be [{spec.kernel},{spec.kernel},{spec.c_mid}]"
            )
        if w_project.shape != (spec.c_mid, spec.c_out):
            raise ShapeError(f"w_project must be [{spec.c_mid},{spec.c_out}]")
        m1, mdw, m2 = mults
        plan = plan or kernel.plan()
        profiler, stats, led = _setup(
            plan, device, profiler, stats, n_slots, pool
        )
        base = profiler.snapshot()
        seg = plan.seg_bytes
        s1, s2, s3 = spec.strides
        pad, k = spec.padding, spec.kernel
        hb = spec.mid_spatial()
        p_out = spec.spatial_out()
        ca = spec.c_in // seg
        ce = spec.c_out // seg
        hw = spec.hw

        # -- whole-tensor execution of the fused chain ------------------- #
        out = self._bottleneck_batch(
            kernel, x[None], w_expand, w_dw, w_project, (m1, mdw, m2)
        )[0]

        # -- event generation -------------------------------------------- #
        if place_input:
            led.place_input(plan.in_base, hw * hw * ca, seg)

        # which B pixels get computed (and thus load their A pixel)
        if kernel.planner.halo_mode == "cache_rows":
            tap = (
                (np.arange(p_out, dtype=np.int64) * s3 * s2)[:, None]
                + np.arange(k, dtype=np.int64)[None, :]
                - pad
            )
            needed = np.zeros(hb, dtype=bool)
            needed[tap[(tap >= 0) & (tap < hb)]] = True
            axis = np.flatnonzero(needed).astype(np.int64)
            ncb = int(axis.size) ** 2
            b_starts = plan.in_base + (
                np.add.outer(axis * s1 * hw, axis * s1) * ca
            ).ravel()
        else:
            pbs, qbs = _recompute_events(p_out, hb, k, pad, s2, s3)
            ncb = pbs.size
            b_starts = plan.in_base + (pbs * s1 * hw + qbs * s1) * ca
        b_wraps = _starts_wraps(b_starts, ca, led.n_slots)

        # depthwise taps clipped by padding (separable, square)
        row0 = np.arange(p_out, dtype=np.int64) * s3 * s2 - pad
        vr = np.clip(np.minimum(hb, row0 + k) - np.maximum(0, row0), 0, k)
        valid_taps = int(vr.sum()) ** 2
        px = p_out * p_out

        loads = ncb * ca + (px * ca if spec.has_residual else 0)
        stores = px * ce
        frees = hw * hw * ca
        wraps = b_wraps + _contig_wraps(plan.out_base, stores, led.n_slots)
        wraps += _contig_wraps(plan.in_base, frees, led.n_slots)
        if spec.has_residual:
            # residual A reads cover every input pixel exactly once
            wraps += _contig_wraps(plan.in_base, px * ca, led.n_slots)
        led.pool_ops(
            loads=loads, stores=stores, frees=frees, wraps=wraps, seg=seg
        )

        # compute work: pw-expand per computed B pixel, depthwise per valid
        # tap, pw-project per output pixel (all workspace traffic is plain
        # SRAM, not pool ops)
        profiler.count_macs(
            ncb * spec.c_in * spec.c_mid
            + valid_taps * spec.c_mid
            + px * spec.c_mid * spec.c_out
        )
        profiler.count_flash(
            ncb * spec.c_in * spec.c_mid
            + px * k * k * spec.c_mid
            + px * spec.c_mid * spec.c_out
        )
        profiler.count_requantize(
            ncb * spec.c_mid + px * spec.c_mid + px * spec.c_out
        )
        profiler.count_sram(
            valid_taps * spec.c_mid + px * spec.c_mid, store=False
        )
        profiler.count_sram(
            ncb * spec.c_mid + px * spec.c_mid, store=True
        )
        if spec.has_residual:
            profiler.count_instr("SADD16", px * spec.c_out / 2.0)
        led.read_back(plan.out_base, stores, seg)

        rf = compose_receptive_field(spec.stages)
        lr = (np.arange(hw, dtype=np.int64) - rf.offset) // rf.jump
        p_free = np.minimum(np.maximum(lr, 0), p_out - 1)
        led.overlap(
            in_base=plan.in_base, in_segments=frees,
            out_base=plan.out_base, out_segments=stores,
            free_times=np.repeat(p_free * p_out + p_out - 0.5, hw * ca),
            store_times=np.repeat(np.arange(px, dtype=np.float64), ce),
        )
        return KernelRun(
            output=out, plan=plan, pool_stats=stats,
            report=profiler.report(since=base),
        )

    # ------------------------------------------------------------------ #
    def run_pipeline(self, pipeline, plan, x, *, strict=True):
        """Whole-chain fast execution: no pool, one profiler, one ledger.

        Mirrors the simulated pipeline exactly: the input placement is
        charged to the (shared) pool statistics but not to any stage's
        profile, each stage consumes the previous stage's output where the
        shifted plan says it lives, and every stage's ``KernelRun`` carries
        the shared cumulative :class:`PoolStats` (as the simulated pipeline
        shares one pool's counters).
        """
        from repro.runtime.pipeline import (
            BottleneckStage,
            DenseStage,
            GlobalAvgPoolStage,
            PipelineResult,
            PointwiseStage,
        )

        profiler = Profiler(pipeline.device)
        stats = PoolStats()
        n_slots = plan.capacity_slots
        result = PipelineResult(output=x, plan=plan)
        act = x
        for i, (sp, stage) in enumerate(zip(plan.stages, pipeline.stages)):
            common = dict(
                device=pipeline.device, plan=sp.plan, strict=strict,
                in_name=sp.in_name, out_name=sp.out_name,
                place_input=(i == 0), profiler=profiler, stats=stats,
                n_slots=n_slots,
            )
            if isinstance(stage, PointwiseStage):
                run = self.pointwise(
                    sp.kernel, act, stage.weights, stage.mult, **common
                )
            elif isinstance(stage, BottleneckStage):
                run = self.bottleneck(
                    sp.kernel, act, stage.w_expand, stage.w_dw,
                    stage.w_project, tuple(stage.mults), **common,
                )
            elif isinstance(stage, GlobalAvgPoolStage):
                run = self.avgpool(sp.kernel, act, stage.mult, **common)
            elif isinstance(stage, DenseStage):
                run = self.fully_connected(
                    sp.kernel, act.reshape(1, -1), stage.weights,
                    stage.mult, **common,
                )
            else:
                raise KernelError(
                    f"unknown stage type {type(stage).__name__}"
                )
            result.stage_runs.append(run)
            act = run.output
        result.output = act
        return result


def _recompute_events(
    p_out: int, hb: int, k: int, pad: int, s2: int, s3: int
) -> tuple[np.ndarray, np.ndarray]:
    """B pixels computed by the rolling ``k x k`` window (recompute mode).

    The simulated kernel keeps the previous window as its cache, so a
    window entry is recomputed iff it falls outside the previous window's
    rectangle — including the cross-row wrap where the last window of row
    ``p`` seeds the first window of row ``p + 1``.
    """
    pbs: list[int] = []
    qbs: list[int] = []
    prev: tuple[int, int, int, int] | None = None
    for p in range(p_out):
        r0 = max(0, p * s3 * s2 - pad)
        r1 = min(hb, p * s3 * s2 - pad + k)
        for q in range(p_out):
            c0 = max(0, q * s3 * s2 - pad)
            c1 = min(hb, q * s3 * s2 - pad + k)
            if prev is None:
                for pb in range(r0, r1):
                    for qb in range(c0, c1):
                        pbs.append(pb)
                        qbs.append(qb)
            else:
                pr0, pr1, pc0, pc1 = prev
                for pb in range(r0, r1):
                    row_cached = pr0 <= pb < pr1
                    for qb in range(c0, c1):
                        if row_cached and pc0 <= qb < pc1:
                            continue
                        pbs.append(pb)
                        qbs.append(qb)
            prev = (r0, r1, c0, c1)
    return np.asarray(pbs, dtype=np.int64), np.asarray(qbs, dtype=np.int64)


register_execution_backend(FastBackend())
