"""Segment-aware depthwise convolution kernel.

Depthwise layers have no cross-channel reuse, which is why tensor-level
managers (TinyEngine) can update them in place.  vMCU's segment-level plan
recovers exactly the same footprint (the paper notes the two coincide for
depthwise), so this kernel doubles as the agreement check between the two
management schemes: its planned span equals ``max(in, out)`` plus the small
window halo that in-place execution also needs.

The segment is one full pixel (``C`` bytes) on both sides.
"""

from __future__ import annotations

import numpy as np

from repro.core.affine import (
    AccessFunction,
    IterationDomain,
    RowMajorLayout,
    TensorAccess,
)
from repro.core.planner import LayerPlan, SingleLayerPlanner
from repro.core.pool import CircularSegmentPool
from repro.errors import ShapeError
from repro.kernels.base import (
    get_execution_backend,
    KernelCostModel,
    KernelRun,
    last_reader_row,
    make_pool,
    memoized_default_plan,
)
from repro.mcu.device import DeviceProfile, STM32F411RE
from repro.mcu.profiler import CostReport, Profiler
from repro.quant import FixedPointMultiplier, requantize

__all__ = ["DepthwiseConvKernel"]


class DepthwiseConvKernel:
    """``Out[P,Q,C] = requant(dwconv(In[H,W,C], W[R,S,C]))`` in the pool."""

    def __init__(
        self,
        h: int,
        w: int,
        c: int,
        *,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
    ):
        if min(h, w, c, kernel) <= 0 or stride <= 0 or padding < 0:
            raise ShapeError(f"bad depthwise config {(h, w, c, kernel, stride)}")
        self.h, self.w, self.c = h, w, c
        self.r = kernel
        self.stride = stride
        self.padding = padding
        self.p = (h + 2 * padding - kernel) // stride + 1
        self.q = (w + 2 * padding - kernel) // stride + 1
        if self.p <= 0 or self.q <= 0:
            raise ShapeError(f"depthwise output collapses: {(self.p, self.q)}")
        self.seg_bytes = c  # one pixel per segment on both sides

    @property
    def in_segments(self) -> int:
        return self.h * self.w

    @property
    def out_segments(self) -> int:
        return self.p * self.q

    # ------------------------------------------------------------------ #
    def accesses(
        self,
    ) -> tuple[IterationDomain, list[TensorAccess], list[TensorAccess]]:
        st, pad, r = self.stride, self.padding, self.r
        domain = IterationDomain(
            extents=(self.p, self.q, r, r), names=("p", "q", "r", "s")
        )
        h, w = self.h, self.w

        def in_bounds(instances: np.ndarray) -> np.ndarray:
            rows = instances[:, 0] * st + instances[:, 2] - pad
            cols = instances[:, 1] * st + instances[:, 3] - pad
            return (rows >= 0) & (rows < h) & (cols >= 0) & (cols < w)

        reads = [
            TensorAccess(
                tensor="In",
                access=AccessFunction(
                    matrix=((st, 0, 1, 0), (0, st, 0, 1)),
                    offset=(-pad, -pad),
                ),
                layout=RowMajorLayout(shape=(h, w)),
                guard=in_bounds,
            )
        ]

        def at_last_inner(instances: np.ndarray) -> np.ndarray:
            return (instances[:, 2] == r - 1) & (instances[:, 3] == r - 1)

        writes = [
            TensorAccess(
                tensor="Out",
                access=AccessFunction(matrix=((1, 0, 0, 0), (0, 1, 0, 0))),
                layout=RowMajorLayout(shape=(self.p, self.q)),
                guard=at_last_inner,
            )
        ]
        return domain, writes, reads

    def plan(self, planner: SingleLayerPlanner | None = None) -> LayerPlan:
        if planner is None:
            return memoized_default_plan(
                self, lambda: self.plan(SingleLayerPlanner())
            )
        domain, writes, reads = self.accesses()
        return planner.plan(
            domain,
            writes,
            reads,
            in_segments=self.in_segments,
            out_segments=self.out_segments,
            seg_bytes=self.seg_bytes,
        )

    # ------------------------------------------------------------------ #
    def run(
        self,
        x: np.ndarray,
        w: np.ndarray,
        mult: FixedPointMultiplier,
        *,
        device: DeviceProfile = STM32F411RE,
        plan: LayerPlan | None = None,
        pool: CircularSegmentPool | None = None,
        strict: bool = True,
        execution: str = "simulate",
        profiler: Profiler | None = None,
    ) -> KernelRun:
        """Execute via the selected backend (``simulate`` or ``fast``)."""
        return get_execution_backend(execution).depthwise(
            self, x, w, mult,
            device=device, plan=plan, pool=pool, strict=strict,
            profiler=profiler,
        )

    def _run_simulate(
        self,
        x: np.ndarray,
        w: np.ndarray,
        mult: FixedPointMultiplier,
        *,
        device: DeviceProfile = STM32F411RE,
        plan: LayerPlan | None = None,
        pool: CircularSegmentPool | None = None,
        strict: bool = True,
        profiler: Profiler | None = None,
    ) -> KernelRun:
        if x.shape != (self.h, self.w, self.c) or x.dtype != np.int8:
            raise ShapeError(
                f"input must be int8[{self.h},{self.w},{self.c}], got {x.shape}"
            )
        if w.shape != (self.r, self.r, self.c) or w.dtype != np.int8:
            raise ShapeError(f"weight must be int8[{self.r},{self.r},{self.c}]")
        plan = plan or self.plan()
        profiler = profiler if profiler is not None else Profiler(device)
        base = profiler.snapshot()
        if pool is None:
            pool = make_pool(plan, strict=strict, profiler=profiler)
        else:
            pool.profiler = profiler
        # Input placement is the previous layer's traffic; do not
        # charge it to this kernel's profile.
        pool.profiler = None
        pool.store_tensor(plan.in_base, x, "In")
        pool.profiler = profiler
        st, pad = self.stride, self.padding
        wi = w.astype(np.int32)

        def in_addr(hh: int, ww: int) -> int:
            return plan.in_base + hh * self.w + ww

        free_row = 0
        for p in range(self.p):
            for q in range(self.q):
                acc = np.zeros(self.c, dtype=np.int32)
                for dr in range(self.r):
                    hh = p * st + dr - pad
                    if not (0 <= hh < self.h):
                        continue
                    for ds in range(self.r):
                        ww = q * st + ds - pad
                        if not (0 <= ww < self.w):
                            continue
                        a = pool.load(in_addr(hh, ww), "In").view(np.int8)
                        profiler.count_flash(self.c)
                        acc += a.astype(np.int32) * wi[dr, ds]
                        profiler.count_macs(self.c)
                out8 = requantize(acc, mult)
                profiler.count_requantize(self.c)
                pool.store(
                    plan.out_base + p * self.q + q, out8.view(np.uint8), "Out"
                )
            while free_row < self.h and last_reader_row(
                free_row, jump=st, offset=-pad, last_row=self.p - 1
            ) <= p:
                for ww in range(self.w):
                    pool.free(in_addr(free_row, ww), "In")
                free_row += 1
        while free_row < self.h:
            for ww in range(self.w):
                pool.free(in_addr(free_row, ww), "In")
            free_row += 1

        report = profiler.report(since=base)
        pool.profiler = None
        flat = pool.read_tensor(plan.out_base, self.out_segments, "Out")
        output = flat.view(np.int8).reshape(self.p, self.q, self.c)
        return KernelRun(
            output=output, plan=plan, pool_stats=pool.stats, report=report
        )

    # ------------------------------------------------------------------ #
    def cost(self, device: DeviceProfile = STM32F411RE) -> CostReport:
        px = self.p * self.q
        taps = self.r * self.r
        macs = px * taps * self.c
        seg_ops = px * (taps + 1) + self.h * self.w
        return KernelCostModel(device).report(
            macs=macs,
            sram_load_bytes=px * taps * self.c,
            sram_store_bytes=px * self.c,
            flash_bytes=macs,
            requant_elements=px * self.c,
            segment_ops=seg_ops,
        )
