"""Segment-aware pointwise (1x1) convolution kernel.

This is the single-layer workload of Figures 7 and 8: the CNNs deployed on
MCUs are dominated by pointwise + depthwise convolutions.  A pointwise
convolution is a GEMM whose M dimension is the image (H*W pixels), so the
kernel follows the Figure 4 sketch with NHWC addressing and optional stride.

Segment size follows Section 5.3: the minimum of input/output channel size
(gcd-aligned), so each image pixel is a whole number of segments in both
tensors and the input pixel (p*stride, q*stride) can be freed as soon as
output pixel (p, q) is stored.
"""

from __future__ import annotations

import numpy as np

from repro.core.affine import (
    AccessFunction,
    IterationDomain,
    RowMajorLayout,
    TensorAccess,
)
from repro.core.planner import LayerPlan, SingleLayerPlanner
from repro.core.pool import CircularSegmentPool
from repro.core.segment_size import select_segment_size
from repro.errors import ShapeError
from repro.kernels.base import (
    cached_pack,
    get_execution_backend,
    KernelCostModel,
    KernelRun,
    make_pool,
    memoized_default_plan,
)
from repro.kernels.fully_connected import pack_fc_weights
from repro.mcu.device import DeviceProfile, STM32F411RE
from repro.mcu.profiler import CostReport, Profiler
from repro.quant import FixedPointMultiplier, requantize

__all__ = ["PointwiseConvKernel"]


class PointwiseConvKernel:
    """``Out[P,Q,K] = requant(In[H,W,C] . W[C,K])`` with partial overlap.

    Parameters
    ----------
    h, w:
        Input image extent (square images use ``h == w``).
    c, k:
        Input/output channel counts.
    stride:
        Spatial stride (output is ``ceil(h/stride) x ceil(w/stride)``).
    seg_bytes:
        Segment size override; defaults to the Section 5.3 policy.
    """

    def __init__(
        self,
        h: int,
        w: int,
        c: int,
        k: int,
        *,
        stride: int = 1,
        seg_bytes: int | None = None,
    ):
        if min(h, w, c, k) <= 0 or stride <= 0:
            raise ShapeError(f"bad pointwise config {(h, w, c, k, stride)}")
        self.h, self.w, self.c, self.k = h, w, c, k
        self.stride = stride
        self.p = (h - 1) // stride + 1
        self.q = (w - 1) // stride + 1
        self.seg_bytes = seg_bytes or select_segment_size(c, k)
        if c % self.seg_bytes or k % self.seg_bytes:
            raise ShapeError(
                f"segment size {self.seg_bytes} does not divide C={c} / K={k}"
            )
        self.ca = c // self.seg_bytes
        self.ce = k // self.seg_bytes

    @property
    def in_segments(self) -> int:
        return self.h * self.w * self.ca

    @property
    def out_segments(self) -> int:
        return self.p * self.q * self.ce

    @property
    def in_bytes(self) -> int:
        return self.h * self.w * self.c

    @property
    def out_bytes(self) -> int:
        return self.p * self.q * self.k

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def accesses(
        self,
    ) -> tuple[IterationDomain, list[TensorAccess], list[TensorAccess]]:
        """Affine formulation on the (p, q, n_seg, c_seg) loop nest.

        The output store physically happens after the reduction over input
        channel segments, so the write access is guarded to the last inner
        instance — this is what makes the solved distance exact rather than
        conservative.
        """
        st = self.stride
        domain = IterationDomain(
            extents=(self.p, self.q, self.ce, self.ca), names=("p", "q", "n", "c")
        )
        reads = [
            TensorAccess(
                tensor="In",
                access=AccessFunction(
                    matrix=((st, 0, 0, 0), (0, st, 0, 0), (0, 0, 0, 1))
                ),
                layout=RowMajorLayout(shape=(self.h, self.w, self.ca)),
            )
        ]
        last_c = self.ca - 1

        def at_last_inner(instances: np.ndarray) -> np.ndarray:
            return instances[:, 3] == last_c

        writes = [
            TensorAccess(
                tensor="Out",
                access=AccessFunction(
                    matrix=((1, 0, 0, 0), (0, 1, 0, 0), (0, 0, 1, 0))
                ),
                layout=RowMajorLayout(shape=(self.p, self.q, self.ce)),
                guard=at_last_inner,
            )
        ]
        return domain, writes, reads

    def plan(self, planner: SingleLayerPlanner | None = None) -> LayerPlan:
        if planner is None:
            return memoized_default_plan(
                self, lambda: self.plan(SingleLayerPlanner())
            )
        domain, writes, reads = self.accesses()
        return planner.plan(
            domain,
            writes,
            reads,
            in_segments=self.in_segments,
            out_segments=self.out_segments,
            seg_bytes=self.seg_bytes,
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        x: np.ndarray,
        w: np.ndarray,
        mult: FixedPointMultiplier,
        *,
        device: DeviceProfile = STM32F411RE,
        plan: LayerPlan | None = None,
        pool: CircularSegmentPool | None = None,
        strict: bool = True,
        in_name: str = "In",
        out_name: str = "Out",
        place_input: bool = True,
        execution: str = "simulate",
        profiler: Profiler | None = None,
    ) -> KernelRun:
        """Execute via the selected backend (``simulate`` or ``fast``).

        ``in_name``/``out_name`` tag pool ownership (chained pipelines give
        each activation a unique tag); ``place_input=False`` means the
        previous pipeline stage already left the input at ``plan.in_base``.
        """
        return get_execution_backend(execution).pointwise(
            self, x, w, mult,
            device=device, plan=plan, pool=pool, strict=strict,
            in_name=in_name, out_name=out_name, place_input=place_input,
            profiler=profiler,
        )

    def _run_simulate(
        self,
        x: np.ndarray,
        w: np.ndarray,
        mult: FixedPointMultiplier,
        *,
        device: DeviceProfile = STM32F411RE,
        plan: LayerPlan | None = None,
        pool: CircularSegmentPool | None = None,
        strict: bool = True,
        in_name: str = "In",
        out_name: str = "Out",
        place_input: bool = True,
        profiler: Profiler | None = None,
    ) -> KernelRun:
        """Simulated execution: load / dot / store / free / wrap."""
        if x.shape != (self.h, self.w, self.c) or x.dtype != np.int8:
            raise ShapeError(
                f"input must be int8[{self.h},{self.w},{self.c}], got {x.shape}"
            )
        if w.shape != (self.c, self.k) or w.dtype != np.int8:
            raise ShapeError(f"weight must be int8[{self.c},{self.k}]")
        plan = plan or self.plan()
        profiler = profiler if profiler is not None else Profiler(device)
        base = profiler.snapshot()
        if pool is None:
            pool = make_pool(plan, strict=strict, profiler=profiler)
        else:
            pool.profiler = profiler
        seg = plan.seg_bytes
        # Input placement is the previous layer's traffic; do not
        # charge it to this kernel's profile.
        if place_input:
            pool.profiler = None
            pool.store_tensor(plan.in_base, x, in_name)
            pool.profiler = profiler
        packed = cached_pack(w, seg, pack_fc_weights)
        st = self.stride

        def in_addr(hh: int, ww: int, cs: int) -> int:
            return plan.in_base + (hh * self.w + ww) * self.ca + cs

        # Input pixels are freed in row-major order once the read cursor
        # passes them (stride > 1 skips pixels entirely; they die the same
        # way).
        free_cursor = 0

        for p in range(self.p):
            for q in range(self.q):
                hh, ww = p * st, q * st
                for ns in range(self.ce):
                    acc = np.zeros(seg, dtype=np.int32)
                    for cs in range(self.ca):
                        a = pool.load(in_addr(hh, ww, cs), in_name).view(np.int8)
                        blk = packed[cs, ns]
                        profiler.count_flash(seg * seg)
                        acc += a.astype(np.int32) @ blk.astype(np.int32)
                        profiler.count_macs(seg * seg)
                    out8 = requantize(acc, mult)
                    profiler.count_requantize(seg)
                    pool.store(
                        plan.out_base + (p * self.q + q) * self.ce + ns,
                        out8.view(np.uint8),
                        out_name,
                    )
                # free every input pixel the read cursor has passed
                last_read_linear = hh * self.w + ww
                while free_cursor <= last_read_linear:
                    for cs in range(self.ca):
                        pool.free(plan.in_base + free_cursor * self.ca + cs, in_name)
                    free_cursor += 1
        while free_cursor < self.h * self.w:
            for cs in range(self.ca):
                pool.free(plan.in_base + free_cursor * self.ca + cs, in_name)
            free_cursor += 1

        report = profiler.report(since=base)
        pool.profiler = None
        flat = pool.read_tensor(plan.out_base, self.out_segments, out_name)
        output = flat.view(np.int8).reshape(self.p, self.q, self.k)
        return KernelRun(
            output=output, plan=plan, pool_stats=pool.stats, report=report
        )

    # ------------------------------------------------------------------ #
    # analytic cost
    # ------------------------------------------------------------------ #
    def cost(self, device: DeviceProfile = STM32F411RE) -> CostReport:
        """Analytic vMCU cost for figure-scale shapes (no simulation)."""
        px = self.p * self.q
        macs = px * self.c * self.k
        seg_ops = px * self.ce * (self.ca + 1) + self.h * self.w * self.ca
        return KernelCostModel(device).report(
            macs=macs,
            sram_load_bytes=px * self.ce * self.c,
            sram_store_bytes=px * self.k,
            flash_bytes=macs,
            requant_elements=px * self.k,
            segment_ops=seg_ops,
        )
