"""NumPy reference implementations of the quantized operators.

These are the golden models: straightforward, obviously-correct int8
operators with int32 accumulation and fixed-point requantization, against
which every segment-aware kernel is verified bit-exactly.

Conventions (shared with the segment-aware kernels):

* activations and weights are symmetric int8 (zero point 0) — the scheme
  MCUNet uses for convolution operands;
* accumulation is int32, wide enough for every shape in the paper
  (max ``K * 127 * 127`` is far below 2**31);
* requantization uses the bit-exact gemmlowp pipeline from
  :mod:`repro.quant.requant`;
* image tensors are NHWC with N = 1 (MCUs run batch 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.quant import FixedPointMultiplier, requantize

__all__ = [
    "fully_connected",
    "pointwise_conv",
    "conv2d",
    "depthwise_conv",
    "saturating_add",
    "inverted_bottleneck",
]


def _as_int8(x: np.ndarray, name: str) -> np.ndarray:
    x = np.asarray(x)
    if x.dtype != np.int8:
        raise ShapeError(f"{name} must be int8, got {x.dtype}")
    return x


def fully_connected(
    x: np.ndarray, w: np.ndarray, mult: FixedPointMultiplier
) -> np.ndarray:
    """``Out[M,N] = requant(In[M,K] @ W[K,N])`` in int8."""
    x = _as_int8(x, "x")
    w = _as_int8(w, "w")
    if x.ndim != 2 or w.ndim != 2 or x.shape[1] != w.shape[0]:
        raise ShapeError(f"fc shapes mismatch: {x.shape} @ {w.shape}")
    acc = x.astype(np.int32) @ w.astype(np.int32)
    return requantize(acc, mult)


def pointwise_conv(
    x: np.ndarray, w: np.ndarray, mult: FixedPointMultiplier, *, stride: int = 1
) -> np.ndarray:
    """1x1 convolution on HWC input; ``w`` is ``[C, K]``."""
    x = _as_int8(x, "x")
    w = _as_int8(w, "w")
    if x.ndim != 3 or w.ndim != 2 or x.shape[2] != w.shape[0]:
        raise ShapeError(f"pointwise shapes mismatch: {x.shape}, {w.shape}")
    if stride < 1:
        raise ShapeError(f"stride must be >= 1, got {stride}")
    x = x[::stride, ::stride, :]
    acc = x.astype(np.int32) @ w.astype(np.int32)
    return requantize(acc, mult)


def conv2d(
    x: np.ndarray,
    w: np.ndarray,
    mult: FixedPointMultiplier,
    *,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """2D convolution, HWC input, ``w`` is ``[R, S, C, K]``, zero padding."""
    x = _as_int8(x, "x")
    w = _as_int8(w, "w")
    if x.ndim != 3 or w.ndim != 4 or x.shape[2] != w.shape[2]:
        raise ShapeError(f"conv2d shapes mismatch: {x.shape}, {w.shape}")
    h, wid, c = x.shape
    r, s, _, k = w.shape
    p = (h + 2 * padding - r) // stride + 1
    q = (wid + 2 * padding - s) // stride + 1
    if p <= 0 or q <= 0:
        raise ShapeError(f"conv2d output collapses: {(p, q)}")
    if padding:
        x = np.pad(x, ((padding, padding), (padding, padding), (0, 0)))
    xi = x.astype(np.int32)
    wi = w.astype(np.int32)
    acc = np.zeros((p, q, k), dtype=np.int32)
    for dr in range(r):
        for ds in range(s):
            window = xi[dr : dr + p * stride : stride, ds : ds + q * stride : stride, :]
            acc += np.tensordot(window, wi[dr, ds], axes=([2], [0]))
    return requantize(acc, mult)


def depthwise_conv(
    x: np.ndarray,
    w: np.ndarray,
    mult: FixedPointMultiplier,
    *,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Depthwise convolution, HWC input, ``w`` is ``[R, S, C]``."""
    x = _as_int8(x, "x")
    w = _as_int8(w, "w")
    if x.ndim != 3 or w.ndim != 3 or x.shape[2] != w.shape[2]:
        raise ShapeError(f"depthwise shapes mismatch: {x.shape}, {w.shape}")
    h, wid, c = x.shape
    r, s, _ = w.shape
    p = (h + 2 * padding - r) // stride + 1
    q = (wid + 2 * padding - s) // stride + 1
    if p <= 0 or q <= 0:
        raise ShapeError(f"depthwise output collapses: {(p, q)}")
    if padding:
        x = np.pad(x, ((padding, padding), (padding, padding), (0, 0)))
    xi = x.astype(np.int32)
    wi = w.astype(np.int32)
    acc = np.zeros((p, q, c), dtype=np.int32)
    for dr in range(r):
        for ds in range(s):
            window = xi[dr : dr + p * stride : stride, ds : ds + q * stride : stride, :]
            acc += window * wi[dr, ds]
    return requantize(acc, mult)


def saturating_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Int8 elementwise add with saturation (same-scale residual add)."""
    a = _as_int8(a, "a")
    b = _as_int8(b, "b")
    if a.shape != b.shape:
        raise ShapeError(f"add shapes mismatch: {a.shape} vs {b.shape}")
    out = a.astype(np.int16) + b.astype(np.int16)
    return np.clip(out, -128, 127).astype(np.int8)


def inverted_bottleneck(
    x: np.ndarray,
    w_expand: np.ndarray,
    w_dw: np.ndarray,
    w_project: np.ndarray,
    mults: tuple[FixedPointMultiplier, FixedPointMultiplier, FixedPointMultiplier],
    *,
    kernel: int,
    strides: tuple[int, int, int],
    padding: int,
    residual: bool,
) -> np.ndarray:
    """Reference for the fused block: pw-expand -> dw -> pw-project (+ skip)."""
    s1, s2, s3 = strides
    m_expand, m_dw, m_project = mults
    b = pointwise_conv(x, w_expand, m_expand, stride=s1)
    c = depthwise_conv(b, w_dw, m_dw, stride=s2, padding=padding)
    d = pointwise_conv(c, w_project, m_project, stride=s3)
    if residual:
        if d.shape != x.shape:
            raise ShapeError(
                f"residual shapes mismatch: {d.shape} vs {x.shape}"
            )
        return saturating_add(d, x)
    return d
