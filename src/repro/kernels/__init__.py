"""Segment-aware kernel library (Section 5).

Two families live here:

* :mod:`repro.kernels.reference` — plain NumPy int8 reference operators
  (golden results for every test).
* Segment-aware kernels that execute against the circular segment pool with
  the five-step structure of Figure 2 (load segment / compute / update
  segment / free segment / boundary check): fully connected, pointwise
  convolution, depthwise convolution (in-place), 2D convolution, and the
  fused inverted-bottleneck kernel of Figure 6.

Each kernel provides a ``plan()`` (memory plan via the Eq.-1/Eq.-2 solvers),
``run()`` (numerically exact simulated execution, race-checked) and
``cost()`` (analytic cycle/energy model for figure-scale shapes).
"""

from repro.kernels.base import (
    ExecutionBackend,
    KernelCostModel,
    KernelRun,
    execution_backends,
    get_execution_backend,
    register_execution_backend,
)
from repro.kernels.fully_connected import FullyConnectedKernel
from repro.kernels.pointwise import PointwiseConvKernel
from repro.kernels.depthwise import DepthwiseConvKernel
from repro.kernels.conv2d import Conv2dKernel
from repro.kernels.bottleneck import FusedBottleneckKernel
from repro.kernels.fastpath import FastBackend  # registers "fast"
from repro.kernels.batched import BatchedBackend  # registers "batched"
from repro.kernels.turbo import TurboBackend  # registers "turbo"

__all__ = [
    "ExecutionBackend",
    "FastBackend",
    "BatchedBackend",
    "TurboBackend",
    "KernelCostModel",
    "KernelRun",
    "execution_backends",
    "get_execution_backend",
    "register_execution_backend",
    "FullyConnectedKernel",
    "PointwiseConvKernel",
    "DepthwiseConvKernel",
    "Conv2dKernel",
    "FusedBottleneckKernel",
]
