"""Batched execution backend (``execution="batched"``) for plan-once/run-many.

The ``"fast"`` backend already replaced the simulator's per-segment Python
loop with whole-tensor NumPy, but every call still pays three per-request
costs that do not depend on the request at all:

* **analytic event generation** — the pool loads/stores/frees/wraps/clobber
  arithmetic in :mod:`repro.kernels.fastpath` depends only on the plan
  geometry, never on the input bytes, yet the fast path re-derives it on
  every run;
* **per-input dispatch** — a batch of B requests issues B small GEMMs per
  stage instead of one stacked GEMM.

This backend amortizes both.  A :class:`CostTemplate` is built once per
:class:`~repro.runtime.pipeline.PipelinePlan` (one dry fast-path run on
a zero input — event generation *is* the fast path's cost derivation, so
the template is bit-identical to what ``execution="simulate"`` reports for
any input) and replayed for every request.  And
:meth:`BatchedBackend.run_pipeline_batch` stacks the batch into one
``[B * pixels, C]`` GEMM per stage, through the *same* batch-axis numeric
helpers the fast path runs with a batch of one — there is exactly one copy
of the arithmetic, so batched-vs-fast parity holds by construction.  Weight
int32 promotion is memoized for both backends through
:func:`~repro.kernels.base.cached_pack` (in-place weight mutation between
requests triggers a re-pack instead of serving stale operands).

int32 accumulation wraps modulo 2**32 independently of summation order and
every row of a stacked GEMM is computed from that row alone, so batched
outputs are bit-identical to per-request ``"fast"`` (and therefore
``"simulate"``) execution — asserted by ``tests/serving/``.

Single-kernel calls (``kernel.run(..., execution="batched")``) fall through
to the inherited fast-path implementations: batching begins at the pipeline
boundary, where the plan is the amortization unit.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import KernelError, ShapeError
from repro.kernels.base import (
    KernelRun,
    pack_i32,
    register_execution_backend,
)
from repro.kernels.fastpath import FastBackend
from repro.core.pool import PoolStats
from repro.mcu.profiler import CostReport

__all__ = ["BatchedBackend", "CostTemplate", "pack_i32"]

#: lazily bound :func:`repro.serving.faults.perhaps` — the kernels layer
#: sits below serving, so the fault hook is resolved on first use instead
#: of imported at module load (which would cycle through serving's init).
_perhaps = None


def _fault_hook(site: str) -> None:
    """Fire ``site`` against the thread's scoped fault injector, if any."""
    global _perhaps
    if _perhaps is None:
        from repro.serving.faults import perhaps

        _perhaps = perhaps
    _perhaps(site)


@dataclass(frozen=True)
class CostTemplate:
    """Per-stage cost reports and final pool statistics of one request.

    Both are input-independent for a fixed plan: the fast backend derives
    them from plan geometry alone, so one derivation serves every request.
    ``stage_reports`` are the per-stage deltas a shared-profiler pipeline
    run records; ``pool_stats`` is the cumulative counter state after one
    whole-chain execution (the object every stage's ``KernelRun`` shares).
    """

    stage_reports: tuple[CostReport, ...]
    pool_stats: PoolStats


class BatchedBackend(FastBackend):
    """Stacked-GEMM pipeline execution with cost-template replay."""

    name = "batched"

    def __init__(self) -> None:
        #: (id(plan), device name) -> (weakref to plan, template); the
        #: weakref both guards against id() reuse and evicts dead plans.
        self._templates: dict[
            tuple[int, str], tuple[weakref.ref, CostTemplate]
        ] = {}
        #: sharded dispatcher workers share this one backend instance, so
        #: template lookup/derive/insert must be atomic; held across the
        #: dry run so each plan's template is derived exactly once.  A
        #: plain Lock (pipeline_template never re-enters itself) so the
        #: at-fork handlers in kernels.base can release the child's copy
        #: without an owner check.
        self._template_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # the cost template
    # ------------------------------------------------------------------ #
    def pipeline_template(self, pipeline, plan) -> CostTemplate:
        """Build (or fetch) the plan's cost template.

        One dry fast-path run on a zero input performs exactly the analytic
        event generation the template must capture; its numeric half is the
        one-time price of not duplicating the fastpath event code here.
        """
        key = (id(plan), pipeline.device.name)
        with self._template_lock:
            hit = self._templates.get(key)
            if hit is not None and hit[0]() is plan:
                return hit[1]
            x0 = np.zeros(
                (pipeline.input_hw, pipeline.input_hw, pipeline.input_c),
                dtype=np.int8,
            )
            dry = FastBackend.run_pipeline(self, pipeline, plan, x0)
            template = CostTemplate(
                stage_reports=tuple(r.report for r in dry.stage_runs),
                pool_stats=replace(dry.stage_runs[-1].pool_stats),
            )

            def _evict(_ref, key=key):
                self._templates.pop(key, None)

            try:
                ref = weakref.ref(plan, _evict)
            except TypeError:
                return template
            self._templates[key] = (ref, template)
            return template

    # ------------------------------------------------------------------ #
    # batched numeric execution
    # ------------------------------------------------------------------ #
    # The arithmetic itself lives in FastBackend's ``_*_batch`` helpers —
    # the single source of numeric truth this backend inherits; only the
    # stage dispatch and per-request result assembly are defined here.
    def _execute_batched(self, pipeline, plan, xb) -> list[np.ndarray]:
        """One stacked pass; returns each stage's ``[B, *single_shape]``."""
        from repro.runtime.pipeline import (
            BottleneckStage,
            DenseStage,
            GlobalAvgPoolStage,
            PointwiseStage,
        )

        acts: list[np.ndarray] = []
        act = xb
        for sp, stage in zip(plan.stages, pipeline.stages):
            if isinstance(stage, PointwiseStage):
                act = self._pointwise_batch(
                    sp.kernel, act, stage.weights, stage.mult
                )
            elif isinstance(stage, BottleneckStage):
                act = self._bottleneck_batch(
                    sp.kernel, act, stage.w_expand, stage.w_dw,
                    stage.w_project, tuple(stage.mults),
                )
            elif isinstance(stage, GlobalAvgPoolStage):
                act = self._avgpool_batch(sp.kernel, act, stage.mult)
            elif isinstance(stage, DenseStage):
                act = self._dense_batch(
                    sp.kernel, act, stage.weights, stage.mult
                )
            else:
                raise KernelError(
                    f"unknown stage type {type(stage).__name__}"
                )
            acts.append(act)
        return acts

    # ------------------------------------------------------------------ #
    # pipeline entry points
    # ------------------------------------------------------------------ #
    def run_pipeline_batch(self, pipeline, plan, xs, *, strict=True):
        """Run ``xs`` through the chain as one stacked pass per stage.

        Returns one :class:`~repro.runtime.pipeline.PipelineResult` per
        request: per-stage outputs are views into the stacked activations,
        per-stage reports are the shared cost template's (bit-identical to
        a per-request simulate/fast run), and each request carries its own
        copy of the template's cumulative pool statistics.
        """
        from repro.runtime.pipeline import PipelineResult

        _fault_hook(f"backend.{self.name}")
        if len(xs) == 0:
            raise KernelError("run_pipeline_batch needs a non-empty batch")
        first = np.asarray(xs[0])
        for i, x in enumerate(xs):
            x = np.asarray(x)
            if x.dtype != np.int8:
                raise ShapeError(f"request {i}: inputs must be int8")
            if x.shape != first.shape:
                raise ShapeError(
                    f"request {i}: shape {x.shape} != {first.shape}; "
                    "a batch must be uniformly shaped"
                )
        template = self.pipeline_template(pipeline, plan)
        acts = self._execute_batched(pipeline, plan, np.stack(xs))

        results = []
        for i in range(len(xs)):
            stats = replace(template.pool_stats)
            result = PipelineResult(output=acts[-1][i], plan=plan)
            result.stage_runs = [
                KernelRun(
                    output=acts[j][i],
                    plan=sp.plan,
                    pool_stats=stats,
                    report=template.stage_reports[j],
                )
                for j, sp in enumerate(plan.stages)
            ]
            results.append(result)
        return results

    def run_pipeline(self, pipeline, plan, x, *, strict=True):
        """Single request = batch of one (still template-amortized)."""
        return self.run_pipeline_batch(pipeline, plan, [x], strict=strict)[0]


register_execution_backend(BatchedBackend())
