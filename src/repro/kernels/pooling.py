"""Segment-aware global average pooling.

MCUNet-style classifiers end with global average pooling before the dense
head.  The kernel is the extreme case of segment overlap: it consumes the
whole feature map pixel by pixel into one accumulator and emits a single
output pixel, so the pool span is just the input itself — the output can
land on freed input slots.

Averaging is computed in fixed point: the accumulated per-channel sums are
requantized with a multiplier that folds in the ``1 / (H*W)`` factor, which
is how CMSIS-NN implements it (no division in the inner loop).
"""

from __future__ import annotations

import numpy as np

from repro.core.affine import (
    AccessFunction,
    IterationDomain,
    RowMajorLayout,
    TensorAccess,
)
from repro.core.planner import LayerPlan, SingleLayerPlanner
from repro.core.pool import CircularSegmentPool
from repro.errors import ShapeError
from repro.kernels.base import (
    get_execution_backend,
    KernelCostModel,
    KernelRun,
    make_pool,
    memoized_default_plan,
)
from repro.mcu.device import DeviceProfile, STM32F411RE
from repro.mcu.profiler import CostReport, Profiler
from repro.quant import FixedPointMultiplier, requantize

__all__ = ["GlobalAvgPoolKernel", "global_avg_pool_reference", "fold_mean"]


def fold_mean(mult: FixedPointMultiplier, pixels: int) -> FixedPointMultiplier:
    """Fold the ``1/pixels`` averaging factor into a requantization multiplier."""
    from repro.quant import quantize_multiplier

    return quantize_multiplier(mult.real_value / pixels)


def global_avg_pool_reference(
    x: np.ndarray, mult: FixedPointMultiplier
) -> np.ndarray:
    """NumPy reference: ``requant(sum over pixels)`` with the folded multiplier."""
    x = np.asarray(x)
    if x.ndim != 3 or x.dtype != np.int8:
        raise ShapeError(f"avg pool input must be int8 HWC, got {x.shape}")
    acc = x.astype(np.int32).sum(axis=(0, 1))
    return requantize(acc, mult)


class GlobalAvgPoolKernel:
    """``Out[C] = requant(sum over H*W of In[H,W,C])`` in the pool.

    ``seg_bytes`` defaults to one pixel (C bytes) and may be any divisor of
    C (shared-pool pipelines force a chain-wide segment size).
    """

    def __init__(self, h: int, w: int, c: int, *, seg_bytes: int | None = None):
        if min(h, w, c) <= 0:
            raise ShapeError(f"bad avg pool config {(h, w, c)}")
        self.h, self.w, self.c = h, w, c
        self.seg_bytes = seg_bytes or c
        if c % self.seg_bytes:
            raise ShapeError(
                f"segment size {self.seg_bytes} does not divide C={c}"
            )
        self.ca = c // self.seg_bytes

    @property
    def in_segments(self) -> int:
        return self.h * self.w * self.ca

    @property
    def out_segments(self) -> int:
        return self.ca

    # ------------------------------------------------------------------ #
    def accesses(
        self,
    ) -> tuple[IterationDomain, list[TensorAccess], list[TensorAccess]]:
        n = self.h * self.w
        domain = IterationDomain(extents=(n, self.ca), names=("t", "c"))
        reads = [
            TensorAccess(
                tensor="In",
                access=AccessFunction.select(2, [0, 1]),
                layout=RowMajorLayout(shape=(n, self.ca)),
            )
        ]

        def at_last_pixel(instances: np.ndarray) -> np.ndarray:
            return instances[:, 0] == n - 1

        writes = [
            TensorAccess(
                tensor="Out",
                access=AccessFunction(matrix=((0, 0), (0, 1))),
                layout=RowMajorLayout(shape=(1, self.ca)),
                guard=at_last_pixel,
            )
        ]
        return domain, writes, reads

    def plan(self, planner: SingleLayerPlanner | None = None) -> LayerPlan:
        if planner is None:
            return memoized_default_plan(
                self, lambda: self.plan(SingleLayerPlanner())
            )
        domain, writes, reads = self.accesses()
        return planner.plan(
            domain,
            writes,
            reads,
            in_segments=self.in_segments,
            out_segments=self.out_segments,
            seg_bytes=self.seg_bytes,
        )

    # ------------------------------------------------------------------ #
    def run(
        self,
        x: np.ndarray,
        mult: FixedPointMultiplier,
        *,
        device: DeviceProfile = STM32F411RE,
        plan: LayerPlan | None = None,
        pool: CircularSegmentPool | None = None,
        strict: bool = True,
        in_name: str = "In",
        out_name: str = "Out",
        place_input: bool = True,
        execution: str = "simulate",
        profiler: Profiler | None = None,
    ) -> KernelRun:
        """Execute via the selected backend (``simulate`` or ``fast``)."""
        return get_execution_backend(execution).avgpool(
            self, x, mult,
            device=device, plan=plan, pool=pool, strict=strict,
            in_name=in_name, out_name=out_name, place_input=place_input,
            profiler=profiler,
        )

    def _run_simulate(
        self,
        x: np.ndarray,
        mult: FixedPointMultiplier,
        *,
        device: DeviceProfile = STM32F411RE,
        plan: LayerPlan | None = None,
        pool: CircularSegmentPool | None = None,
        strict: bool = True,
        in_name: str = "In",
        out_name: str = "Out",
        place_input: bool = True,
        profiler: Profiler | None = None,
    ) -> KernelRun:
        """Stream every pixel through the accumulator, emit one pixel."""
        if x.shape != (self.h, self.w, self.c) or x.dtype != np.int8:
            raise ShapeError(
                f"input must be int8[{self.h},{self.w},{self.c}], got {x.shape}"
            )
        plan = plan or self.plan()
        profiler = profiler if profiler is not None else Profiler(device)
        base = profiler.snapshot()
        if pool is None:
            pool = make_pool(plan, strict=strict, profiler=profiler)
        else:
            pool.profiler = profiler
        if place_input:
            pool.profiler = None
            pool.store_tensor(plan.in_base, x, in_name)
            pool.profiler = profiler

        seg = plan.seg_bytes
        acc = np.zeros(self.c, dtype=np.int32)
        for t in range(self.h * self.w):
            for cs in range(self.ca):
                a = pool.load(plan.in_base + t * self.ca + cs, in_name)
                acc[cs * seg : (cs + 1) * seg] += a.view(np.int8).astype(np.int32)
                profiler.count_instr("SADD16", seg / 2.0)
                pool.free(plan.in_base + t * self.ca + cs, in_name)
        out8 = requantize(acc, mult)
        profiler.count_requantize(self.c)
        out_bytes = out8.view(np.uint8)
        for cs in range(self.ca):
            pool.store(
                plan.out_base + cs, out_bytes[cs * seg : (cs + 1) * seg], out_name
            )

        report = profiler.report(since=base)
        pool.profiler = None
        flat = pool.read_tensor(plan.out_base, self.ca, out_name)
        return KernelRun(
            output=flat.view(np.int8).copy(),
            plan=plan,
            pool_stats=pool.stats,
            report=report,
        )

    # ------------------------------------------------------------------ #
    def cost(self, device: DeviceProfile = STM32F411RE) -> CostReport:
        px = self.h * self.w
        return KernelCostModel(device).report(
            macs=0,
            sram_load_bytes=px * self.c,
            sram_store_bytes=self.c,
            flash_bytes=0,
            requant_elements=self.c,
            segment_ops=px * self.ca + self.ca,
        )
