"""Turbo execution backend (``execution="turbo"``): BLAS-rate serving math.

The ``"batched"`` backend already amortizes planning, weight packing and
cost derivation; what remains per request is the arithmetic itself, and
NumPy executes integer matmuls with its generic C inner loop — BLAS never
sees them.  This backend swaps the two arithmetic leaves of
:class:`~repro.kernels.fastpath.FastBackend` for implementations that
reach BLAS while remaining *provably bit-exact*:

* **GEMM** — int8 operands are exactly representable in float64, and a
  dot product over ``K`` terms is bounded by ``K * 128 * 128 = K * 2**14``
  in magnitude.  For ``K < 2**17`` that bound stays below ``2**31``, so
  the int32 accumulation the simulator performs never wraps, and below
  ``2**53`` every partial sum is exact in a double *regardless of the
  summation order BLAS chooses*.  Casting the float64 product back to
  int32 therefore reproduces the simulator's accumulator bit for bit.
  Shapes with ``K >= 2**17`` (none exist in the Table 2 models; the
  guard is there for arbitrary user graphs) fall back to the int32
  matmul, where wrapping semantics are native.

* **requantize** — :func:`repro.quant.requantize_fast`: one float64
  multiply-and-round, with the exact integer pipeline replayed only on
  the few percent of elements near a rounding boundary (see its
  docstring for the error-bound argument).

Costs are untouched: the backend inherits the batched backend's
per-plan :class:`~repro.kernels.batched.CostTemplate`, so per-request
``CostReport``s stay bit-identical to ``execution="simulate"`` — the
modeled on-device cost is a property of the plan, not of how fast the
host happens to evaluate the arithmetic.  The serving dispatcher's
workers default to this backend; ``tests/kernels/test_turbo_backend.py``
property-tests output and report parity against ``"fast"``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import (
    cached_pack,
    pack_f64,
    pack_i32,
    register_execution_backend,
)
from repro.kernels.batched import BatchedBackend, _fault_hook
from repro.quant import requantize_fast

__all__ = ["TurboBackend", "I32_SAFE_K", "gemm_is_exact"]

#: largest reduction depth for which an int8 x int8 dot product is
#: guaranteed to stay inside int32 (no wrap) and inside float64's 53-bit
#: integer range (exact BLAS accumulation): K * 128 * 128 < 2**31.
I32_SAFE_K = 1 << 17


def gemm_is_exact(k: int) -> bool:
    """Whether the float64 BLAS path is provably exact for depth ``k``."""
    return 0 < k < I32_SAFE_K


class TurboBackend(BatchedBackend):
    """Batched serving backend with exact float64 BLAS arithmetic."""

    name = "turbo"
    #: sessions warm both layouts: float64 for the BLAS GEMMs, int32 for
    #: the depthwise taps and the deep-reduction fallback
    weight_packers = (pack_i32, pack_f64)

    def _gemm(
        self, x2d: np.ndarray, w: np.ndarray,
        w2d_shape: tuple[int, int] | None = None,
    ) -> np.ndarray:
        _fault_hook("backend.turbo.gemm")
        if not gemm_is_exact(x2d.shape[1]):
            return super()._gemm(x2d, w, w2d_shape)
        wp = cached_pack(w, 0, pack_f64)
        if w2d_shape is not None:
            wp = wp.reshape(w2d_shape)
        # float64 accumulator of exact integers; flows straight into
        # requantize_fast without an int32 round trip
        return x2d.astype(np.float64) @ wp

    def _requant(self, acc: np.ndarray, mult) -> np.ndarray:
        return requantize_fast(acc, mult)


register_execution_backend(TurboBackend())
