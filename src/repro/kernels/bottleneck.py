"""Fused inverted-bottleneck kernel (Figure 6).

The fused kernel streams through output pixels of the block's final tensor
``E``.  For each pixel it:

1. materializes the depthwise window of the expanded tensor ``B`` in a tiny
   workspace (``k x k`` segments), loading the needed pixels of ``A`` from
   the circular pool and computing the first pointwise convolution on the
   fly (column-rolling: entries still in the window are reused, new ones are
   recomputed — the paper's recompute/workspace trade-off);
2. computes one segment of ``C`` (depthwise) and one segment of ``D``
   (second pointwise) in workspace;
3. adds the residual segment of ``A`` when the block has a skip connection;
4. stores the ``E`` segment back into the pool, where it may land on pool
   slots whose ``A`` rows the receptive field has already passed.

Only ``A`` and ``E`` ever live in the pool; the intermediates occupy
``k*k + 1 + 1`` workspace segments (11 for a 3x3 depthwise) exactly as the
paper counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.multilayer import (
    BottleneckSpec,
    FusedBlockPlan,
    InvertedBottleneckPlanner,
    compose_receptive_field,
)
from repro.core.pool import CircularSegmentPool
from repro.errors import ShapeError
from repro.kernels.base import (
    KernelCostModel,
    KernelRun,
    get_execution_backend,
    last_reader_row,
)
from repro.mcu.device import DeviceProfile, STM32F411RE
from repro.mcu.profiler import CostReport, Profiler
from repro.quant import FixedPointMultiplier, requantize

__all__ = ["FusedBottleneckKernel"]


class FusedBottleneckKernel:
    """Executable fused kernel for one :class:`BottleneckSpec`."""

    def __init__(
        self,
        spec: BottleneckSpec,
        *,
        halo_mode: str = "cache_rows",
        planner: InvertedBottleneckPlanner | None = None,
    ):
        self.spec = spec
        self.planner = planner or InvertedBottleneckPlanner(halo_mode=halo_mode)

    def plan(self) -> FusedBlockPlan:
        # memoized per planner identity/configuration, so swapping
        # self.planner (or its halo mode) re-solves instead of silently
        # serving the previous configuration's plan
        key = (
            id(self.planner), self.planner.halo_mode,
            self.planner.prefer_exact,
        )
        cached = getattr(self, "_default_plan", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        plan = self.planner.plan(self.spec)
        self._default_plan = (key, plan)
        return plan

    # ------------------------------------------------------------------ #
    def run(
        self,
        x: np.ndarray,
        w_expand: np.ndarray,
        w_dw: np.ndarray,
        w_project: np.ndarray,
        mults: tuple[
            FixedPointMultiplier, FixedPointMultiplier, FixedPointMultiplier
        ],
        *,
        device: DeviceProfile = STM32F411RE,
        plan: FusedBlockPlan | None = None,
        pool: CircularSegmentPool | None = None,
        strict: bool = True,
        in_name: str = "A",
        out_name: str = "E",
        place_input: bool = True,
        execution: str = "simulate",
        profiler: Profiler | None = None,
    ) -> KernelRun:
        """Fused execution via the selected backend, bit-exact against the
        reference chain.

        ``in_name``/``out_name`` tag pool ownership for chained pipelines;
        ``place_input=False`` means the input already sits at
        ``plan.in_base`` (left there by the previous stage).
        """
        return get_execution_backend(execution).bottleneck(
            self, x, w_expand, w_dw, w_project, mults,
            device=device, plan=plan, pool=pool, strict=strict,
            in_name=in_name, out_name=out_name, place_input=place_input,
            profiler=profiler,
        )

    def _run_simulate(
        self,
        x: np.ndarray,
        w_expand: np.ndarray,
        w_dw: np.ndarray,
        w_project: np.ndarray,
        mults: tuple[
            FixedPointMultiplier, FixedPointMultiplier, FixedPointMultiplier
        ],
        *,
        device: DeviceProfile = STM32F411RE,
        plan: FusedBlockPlan | None = None,
        pool: CircularSegmentPool | None = None,
        strict: bool = True,
        in_name: str = "A",
        out_name: str = "E",
        place_input: bool = True,
        profiler: Profiler | None = None,
    ) -> KernelRun:
        spec = self.spec
        if x.shape != (spec.hw, spec.hw, spec.c_in) or x.dtype != np.int8:
            raise ShapeError(
                f"input must be int8[{spec.hw},{spec.hw},{spec.c_in}], got {x.shape}"
            )
        if w_expand.shape != (spec.c_in, spec.c_mid):
            raise ShapeError(f"w_expand must be [{spec.c_in},{spec.c_mid}]")
        if w_dw.shape != (spec.kernel, spec.kernel, spec.c_mid):
            raise ShapeError(
                f"w_dw must be [{spec.kernel},{spec.kernel},{spec.c_mid}]"
            )
        if w_project.shape != (spec.c_mid, spec.c_out):
            raise ShapeError(f"w_project must be [{spec.c_mid},{spec.c_out}]")
        m1, mdw, m2 = mults
        plan = plan or self.plan()
        profiler = profiler if profiler is not None else Profiler(device)
        base = profiler.snapshot()
        if pool is None:
            pool = CircularSegmentPool(
                n_slots=plan.span_slots,
                seg_bytes=plan.seg_bytes,
                strict=strict,
                profiler=profiler,
            )
        else:
            pool.profiler = profiler

        seg = plan.seg_bytes
        ca = spec.c_in // seg
        ce = spec.c_out // seg
        s1, s2, s3 = spec.strides
        pad = spec.padding
        k = spec.kernel
        hb = spec.mid_spatial()  # spatial extent of B (and C before stride s3)
        p_out = spec.spatial_out()
        rf = compose_receptive_field(spec.stages)
        h = w = spec.hw

        if place_input:
            # Input placement is the previous layer's traffic; do not
            # charge it to this kernel's profile.
            pool.profiler = None
            pool.store_tensor(plan.in_base, x, in_name)
            pool.profiler = profiler
        w1 = w_expand.astype(np.int32)
        wdw = w_dw.astype(np.int32)
        w2 = w_project.astype(np.int32)

        def in_addr(hh: int, ww: int, cs: int) -> int:
            return plan.in_base + (hh * w + ww) * ca + cs

        def load_a_pixel(hh: int, ww: int) -> np.ndarray:
            parts = [
                pool.load(in_addr(hh, ww, cs), in_name).view(np.int8)
                for cs in range(ca)
            ]
            return np.concatenate(parts)

        def compute_b(pb: int, qb: int) -> np.ndarray:
            """First pointwise conv for one B pixel (int8 after requant)."""
            a = load_a_pixel(pb * s1, qb * s1)
            acc = a.astype(np.int32) @ w1
            profiler.count_macs(spec.c_in * spec.c_mid)
            profiler.count_flash(spec.c_in * spec.c_mid)
            profiler.count_requantize(spec.c_mid)
            # workspace store of the fresh B segment
            profiler.count_sram(spec.c_mid, store=True)
            return requantize(acc, m1)

        # Workspace for B segments: a rolling k x k window ("recompute"
        # mode, the literal Figure 6 buffer) or k rolling rows
        # ("cache_rows" mode, each B pixel computed exactly once).
        cache_rows = self.planner.halo_mode == "cache_rows"
        b_cache: dict[tuple[int, int], np.ndarray] = {}

        free_row = 0
        for p in range(p_out):
            for q in range(p_out):
                # -- step 1: the B window this E pixel's dw stage needs
                pc, qc = p * s3, q * s3  # the C pixel the pw-project reads
                window: dict[tuple[int, int], np.ndarray] = {}
                for dr in range(k):
                    pb = pc * s2 + dr - pad
                    if not (0 <= pb < hb):
                        continue
                    for ds in range(k):
                        qb = qc * s2 + ds - pad
                        if not (0 <= qb < hb):
                            continue
                        cached = b_cache.get((pb, qb))
                        if cached is None:
                            cached = compute_b(pb, qb)
                            if cache_rows:
                                b_cache[(pb, qb)] = cached
                        window[(pb, qb)] = cached
                if not cache_rows:
                    b_cache = window  # evict everything the window passed

                # -- step 2: one C segment (depthwise on the window)
                acc_c = np.zeros(spec.c_mid, dtype=np.int32)
                for dr in range(k):
                    pb = pc * s2 + dr - pad
                    for ds in range(k):
                        qb = qc * s2 + ds - pad
                        bseg = b_cache.get((pb, qb))
                        if bseg is None:
                            continue  # zero padding
                        profiler.count_sram(spec.c_mid, store=False)
                        acc_c += bseg.astype(np.int32) * wdw[dr, ds]
                        profiler.count_macs(spec.c_mid)
                profiler.count_flash(k * k * spec.c_mid)
                c_seg = requantize(acc_c, mdw)
                profiler.count_requantize(spec.c_mid)
                profiler.count_sram(spec.c_mid, store=True)

                # -- step 3: one D segment (second pointwise)
                profiler.count_sram(spec.c_mid, store=False)
                acc_d = c_seg.astype(np.int32) @ w2
                profiler.count_macs(spec.c_mid * spec.c_out)
                profiler.count_flash(spec.c_mid * spec.c_out)
                d_seg = requantize(acc_d, m2)
                profiler.count_requantize(spec.c_out)

                # -- step 4: residual add with the A segment loaded earlier
                if spec.has_residual:
                    a_res = load_a_pixel(p, q)
                    e_seg = np.clip(
                        d_seg.astype(np.int16) + a_res.astype(np.int16), -128, 127
                    ).astype(np.int8)
                    profiler.count_instr("SADD16", spec.c_out / 2.0)
                else:
                    e_seg = d_seg

                # -- step 5: store E back to the pool (may evict dead A rows)
                e_bytes = e_seg.view(np.uint8)
                for j in range(ce):
                    pool.store(
                        plan.out_base + (p * p_out + q) * ce + j,
                        e_bytes[j * seg : (j + 1) * seg],
                        out_name,
                    )

            if cache_rows:
                # roll the B row cache: rows below the next window are dead
                min_needed = (p + 1) * s3 * s2 - pad
                for key in [kk for kk in b_cache if kk[0] < min_needed]:
                    del b_cache[key]
            while free_row < h and last_reader_row(
                free_row, jump=rf.jump, offset=rf.offset, last_row=p_out - 1
            ) <= p:
                for ww in range(w):
                    for cs in range(ca):
                        pool.free(in_addr(free_row, ww, cs), in_name)
                free_row += 1
        while free_row < h:
            for ww in range(w):
                for cs in range(ca):
                    pool.free(in_addr(free_row, ww, cs), in_name)
            free_row += 1

        report = profiler.report(since=base)
        pool.profiler = None
        flat = pool.read_tensor(plan.out_base, p_out * p_out * ce, out_name)
        output = flat.view(np.int8).reshape(p_out, p_out, spec.c_out)
        return KernelRun(
            output=output, plan=plan, pool_stats=pool.stats, report=report
        )

    # ------------------------------------------------------------------ #
    # analytic cost
    # ------------------------------------------------------------------ #
    def recompute_count(self) -> int:
        """Number of B-pixel computations the rolling window performs.

        Column rolling reuses window entries as ``q`` advances; each output
        row recomputes its window rows from scratch (the ``k x k`` workspace
        cannot cache across rows).  ``cache_rows`` mode computes every B
        pixel exactly once.
        """
        spec = self.spec
        k = spec.kernel
        p_out = spec.spatial_out()
        hb = spec.mid_spatial()
        s2, s3 = spec.strides[1], spec.strides[2]
        if self.planner.halo_mode == "cache_rows":
            return hb * hb
        shift = s2 * s3  # window column shift per output pixel step
        per_row_cols = min(k + (p_out - 1) * shift, hb) if p_out > 1 else min(k, hb)
        # k window rows per output row, clipped by padding at the borders
        return p_out * min(k, hb) * per_row_cols

    def cost(self, device: DeviceProfile = STM32F411RE) -> CostReport:
        """Analytic cost for figure-scale blocks (Table 3 / Figure 9)."""
        spec = self.spec
        k = spec.kernel
        px = spec.spatial_out() ** 2
        b_computes = self.recompute_count()
        macs = (
            b_computes * spec.c_in * spec.c_mid
            + px * k * k * spec.c_mid
            + px * spec.c_mid * spec.c_out
        )
        sram_loads = (
            b_computes * spec.c_in  # A pixels feeding pw-expand
            + px * k * k * spec.c_mid  # B window reads for depthwise
            + px * spec.c_mid  # C segment read by pw-project
            + (px * spec.c_in if spec.has_residual else 0)
        )
        sram_stores = (
            b_computes * spec.c_mid  # fresh B segments into workspace
            + px * spec.c_mid  # C segments
            + px * spec.c_out  # E segments
        )
        flash = (
            b_computes * spec.c_in * spec.c_mid
            + px * k * k * spec.c_mid
            + px * spec.c_mid * spec.c_out
        )
        requant = b_computes * spec.c_mid + px * spec.c_mid + px * spec.c_out
        ca = spec.c_in // self.planner.segment_bytes(spec)
        ce = spec.c_out // self.planner.segment_bytes(spec)
        seg_ops = b_computes * ca + px * (ce + (ca if spec.has_residual else 0))
        seg_ops += spec.hw * spec.hw * ca  # frees
        return KernelCostModel(device).report(
            macs=macs,
            sram_load_bytes=sram_loads,
            sram_store_bytes=sram_stores,
            flash_bytes=flash,
            requant_elements=requant,
            segment_ops=seg_ops,
        )
