"""Segment-aware fully connected kernel (Figure 4).

Two-level tiling: the outer level walks segments of the circular pool, the
inner level is the SIMD dot product (vectorized here with NumPy, standing in
for the SMLAD-based ``Dot`` intrinsic).  The kernel follows the five-step
structure — RAMLoad, compute, RAMStore, RAMFree, boundary check — and frees
each input row after the full output row is produced, exactly as the paper's
pseudo code does.
"""

from __future__ import annotations

import numpy as np

from repro.core.affine import AccessFunction, IterationDomain, RowMajorLayout, TensorAccess
from repro.core.planner import LayerPlan, SingleLayerPlanner
from repro.core.pool import CircularSegmentPool
from repro.core.segment_size import select_segment_size
from repro.errors import ShapeError
from repro.kernels.base import (
    cached_pack,
    get_execution_backend,
    KernelCostModel,
    KernelRun,
    make_pool,
    memoized_default_plan,
)
from repro.mcu.device import DeviceProfile, STM32F411RE
from repro.mcu.profiler import CostReport, Profiler
from repro.quant import FixedPointMultiplier, requantize

__all__ = ["FullyConnectedKernel", "pack_fc_weights"]


def pack_fc_weights(w: np.ndarray, seg: int) -> np.ndarray:
    """Re-layout ``W[K, N]`` into contiguous ``seg x seg`` blocks.

    Real deployments pre-pack weights in Flash so each FlashLoad is one
    contiguous burst; the packed layout is ``[Ks, Ns, seg, seg]``.
    """
    k, n = w.shape
    if k % seg or n % seg:
        raise ShapeError(f"segment {seg} does not tile weight {w.shape}")
    return (
        w.reshape(k // seg, seg, n // seg, seg).transpose(0, 2, 1, 3).copy()
    )


class FullyConnectedKernel:
    """``Out[M, N] = requant(In[M, K] @ W[K, N])`` with input/output overlap.

    Parameters
    ----------
    m, k, n:
        GEMM dimensions (``In[M,K]``, ``W[K,N]``, ``Out[M,N]``).
    seg_bytes:
        Segment size; defaults to the Section 5.3 policy
        (min of the row sizes, gcd-aligned).
    """

    def __init__(self, m: int, k: int, n: int, *, seg_bytes: int | None = None):
        if min(m, k, n) <= 0:
            raise ShapeError(f"FC dims must be positive, got {(m, k, n)}")
        self.m, self.k, self.n = m, k, n
        self.seg_bytes = seg_bytes or select_segment_size(k, n)
        if k % self.seg_bytes or n % self.seg_bytes:
            raise ShapeError(
                f"segment size {self.seg_bytes} does not divide K={k} / N={n}"
            )
        self.ks = k // self.seg_bytes
        self.ns = n // self.seg_bytes

    @property
    def in_segments(self) -> int:
        return self.m * self.ks

    @property
    def out_segments(self) -> int:
        return self.m * self.ns

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def accesses(
        self,
    ) -> tuple[IterationDomain, list[TensorAccess], list[TensorAccess]]:
        """The Section 4 GEMM formulation at segment granularity."""
        domain = IterationDomain(
            extents=(self.m, self.ns, self.ks), names=("m", "n", "k")
        )
        reads = [
            TensorAccess(
                tensor="In",
                access=AccessFunction.select(3, [0, 2]),
                layout=RowMajorLayout(shape=(self.m, self.ks)),
            )
        ]
        writes = [
            TensorAccess(
                tensor="Out",
                access=AccessFunction.select(3, [0, 1]),
                layout=RowMajorLayout(shape=(self.m, self.ns)),
            )
        ]
        return domain, writes, reads

    def plan(self, planner: SingleLayerPlanner | None = None) -> LayerPlan:
        if planner is None:
            return memoized_default_plan(
                self, lambda: self.plan(SingleLayerPlanner())
            )
        domain, writes, reads = self.accesses()
        return planner.plan(
            domain,
            writes,
            reads,
            in_segments=self.m * self.ks,
            out_segments=self.m * self.ns,
            seg_bytes=self.seg_bytes,
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def place_input(
        self, pool: CircularSegmentPool, x: np.ndarray, plan: LayerPlan
    ) -> None:
        """Lay the input tensor into the pool at the planned base address."""
        if x.shape != (self.m, self.k) or x.dtype != np.int8:
            raise ShapeError(f"input must be int8[{self.m},{self.k}], got {x.shape}")
        pool.store_tensor(plan.in_base, x, "In")

    def run(
        self,
        x: np.ndarray,
        w: np.ndarray,
        mult: FixedPointMultiplier,
        *,
        device: DeviceProfile = STM32F411RE,
        plan: LayerPlan | None = None,
        pool: CircularSegmentPool | None = None,
        strict: bool = True,
        in_name: str = "In",
        out_name: str = "Out",
        place_input: bool = True,
        execution: str = "simulate",
        profiler: Profiler | None = None,
    ) -> KernelRun:
        """Execute the Figure 4 schedule via the selected backend.

        ``execution="simulate"`` replays the schedule segment by segment in
        the circular pool; ``execution="fast"`` computes the same bits with
        one vectorized GEMM and derives the cost report analytically.  A
        shared ``profiler`` (pipelines) accumulates across stages; the
        returned report always covers just this kernel.
        """
        return get_execution_backend(execution).fully_connected(
            self, x, w, mult,
            device=device, plan=plan, pool=pool, strict=strict,
            in_name=in_name, out_name=out_name, place_input=place_input,
            profiler=profiler,
        )

    def _run_simulate(
        self,
        x: np.ndarray,
        w: np.ndarray,
        mult: FixedPointMultiplier,
        *,
        device: DeviceProfile = STM32F411RE,
        plan: LayerPlan | None = None,
        pool: CircularSegmentPool | None = None,
        strict: bool = True,
        in_name: str = "In",
        out_name: str = "Out",
        place_input: bool = True,
        profiler: Profiler | None = None,
    ) -> KernelRun:
        """Segment-by-segment pool replay, bit-exact against
        :func:`repro.kernels.reference.fully_connected` whenever the plan's
        distance is honoured."""
        if w.shape != (self.k, self.n) or w.dtype != np.int8:
            raise ShapeError(f"weight must be int8[{self.k},{self.n}]")
        plan = plan or self.plan()
        profiler = profiler if profiler is not None else Profiler(device)
        base = profiler.snapshot()
        if pool is None:
            pool = make_pool(plan, strict=strict, profiler=profiler)
        else:
            pool.profiler = profiler
        seg = plan.seg_bytes
        if x.shape != (self.m, self.k) or x.dtype != np.int8:
            raise ShapeError(f"input must be int8[{self.m},{self.k}], got {x.shape}")
        if place_input:
            # Input placement is the previous layer's traffic; do not
            # charge it to this kernel's profile.
            pool.profiler = None
            pool.store_tensor(plan.in_base, x, in_name)
            pool.profiler = profiler
        packed = cached_pack(w, seg, pack_fc_weights)

        for m in range(self.m):
            for ns in range(self.ns):
                acc = np.zeros(seg, dtype=np.int32)  # RegAlloc(Seg, 0)
                for ks in range(self.ks):
                    a = pool.load(plan.in_base + m * self.ks + ks, in_name).view(np.int8)
                    blk = packed[ks, ns]  # FlashLoad, one contiguous burst
                    profiler.count_flash(seg * seg)
                    acc += a.astype(np.int32) @ blk.astype(np.int32)
                    profiler.count_macs(seg * seg)
                out8 = requantize(acc, mult)
                profiler.count_requantize(seg)
                pool.store(plan.out_base + m * self.ns + ns, out8.view(np.uint8), out_name)
            for ks in range(self.ks):
                pool.free(plan.in_base + m * self.ks + ks, in_name)

        # Read-back is verification plumbing, not kernel work: detach the
        # profiler so the report reflects the kernel alone.
        report = profiler.report(since=base)
        pool.profiler = None
        flat = pool.read_tensor(plan.out_base, self.m * self.ns, out_name)
        output = flat.view(np.int8).reshape(self.m, self.n)
        return KernelRun(
            output=output, plan=plan, pool_stats=pool.stats, report=report
        )

    # ------------------------------------------------------------------ #
    # analytic cost (figure-scale shapes, no simulation)
    # ------------------------------------------------------------------ #
    def cost(self, device: DeviceProfile = STM32F411RE) -> CostReport:
        """Analytic vMCU cost: counts identical to what ``run`` profiles."""
        m, k, n = self.m, self.k, self.n
        macs = m * k * n
        seg_ops = m * self.ns * self.ks + m * self.ns + m * self.ks
        return KernelCostModel(device).report(
            macs=macs,
            sram_load_bytes=m * self.ns * k,
            sram_store_bytes=m * n,
            flash_bytes=macs,
            requant_elements=m * n,
            segment_ops=seg_ops,
        )
