"""Energy model for MCU kernel execution.

The paper attributes its energy wins to reduced memory-access counts and
lower latency (Section 7.2: "The energy consumption of MCU is highly related
to the total number of memory accesses and execution latency").  The model
here follows that decomposition directly:

    E = e_cycle * cycles  +  e_sram * sram_bytes  +  e_flash * flash_bytes

with coefficients taken from the device profile.  The breakdown is kept so
benchmark tables can attribute energy to compute vs memory, mirroring the
paper's discussion of im2col's extra RAM accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mcu.device import DeviceProfile

__all__ = ["EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (nJ) attributed to core cycles, SRAM traffic and Flash traffic."""

    core_nj: float
    sram_nj: float
    flash_nj: float

    @property
    def total_nj(self) -> float:
        return self.core_nj + self.sram_nj + self.flash_nj

    @property
    def total_uj(self) -> float:
        return self.total_nj / 1e3

    @property
    def total_mj(self) -> float:
        return self.total_nj / 1e6

    @property
    def memory_fraction(self) -> float:
        """Share of energy spent moving data (SRAM + Flash)."""
        total = self.total_nj
        if total == 0:
            return 0.0
        return (self.sram_nj + self.flash_nj) / total

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            core_nj=self.core_nj * factor,
            sram_nj=self.sram_nj * factor,
            flash_nj=self.flash_nj * factor,
        )

    @staticmethod
    def combine(parts: list["EnergyBreakdown"]) -> "EnergyBreakdown":
        return EnergyBreakdown(
            core_nj=sum(p.core_nj for p in parts),
            sram_nj=sum(p.sram_nj for p in parts),
            flash_nj=sum(p.flash_nj for p in parts),
        )


class EnergyModel:
    """Computes :class:`EnergyBreakdown` for counted work on one device."""

    def __init__(self, device: DeviceProfile):
        self.device = device

    def energy(
        self, *, cycles: float, sram_bytes: int, flash_bytes: int
    ) -> EnergyBreakdown:
        d = self.device
        return EnergyBreakdown(
            core_nj=cycles * d.energy_per_cycle_nj,
            sram_nj=sram_bytes * d.energy_per_sram_byte_nj,
            flash_nj=flash_bytes * d.energy_per_flash_byte_nj,
        )
