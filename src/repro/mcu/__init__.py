"""MCU hardware simulator substrate.

The paper evaluates on two STM32 boards; with no hardware available this
package provides the simulated equivalent: device profiles with the memory
capacities and clock rates of the real parts, byte-level SRAM/Flash models,
an instruction cost table for the Cortex-M instructions the paper's
intrinsics lower to (SMLAD, SADD16, PKHBT, LDR/STR, memcpy), and an energy
model that charges nanojoules per cycle and per memory access — the two
quantities the paper itself says dominate MCU energy (Section 7.2).
"""

from repro.mcu.device import (
    DeviceProfile,
    STM32F411RE,
    STM32F767ZI,
    DEVICES,
    get_device,
)
from repro.mcu.memory import Flash, SRAM
from repro.mcu.isa import Instruction, InstructionSet, CORTEX_M4_ISA, CORTEX_M7_ISA
from repro.mcu.energy import EnergyModel, EnergyBreakdown
from repro.mcu.profiler import Profiler, CostReport

__all__ = [
    "DeviceProfile",
    "STM32F411RE",
    "STM32F767ZI",
    "DEVICES",
    "get_device",
    "Flash",
    "SRAM",
    "Instruction",
    "InstructionSet",
    "CORTEX_M4_ISA",
    "CORTEX_M7_ISA",
    "EnergyModel",
    "EnergyBreakdown",
    "Profiler",
    "CostReport",
]
