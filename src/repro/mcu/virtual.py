"""Deployment facade: a virtual MCU that hosts a whole model.

Ties the simulator pieces together the way a real deployment does:

* weights are "linked" into the Flash model (capacity-checked — a model
  whose parameters exceed the part's Flash cannot ship, independent of RAM);
* the pipeline's shared circular pool is placed in the device SRAM;
* inference runs the chained pipeline against that SRAM, so the byte
  traffic counted by :class:`~repro.mcu.memory.SRAM` is the model's real
  simulated footprint traffic.

This is the "ARM GCC + Mbed deploy" step of Section 6.2, minus the cable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OutOfMemoryError, PlanError
from repro.mcu.device import DeviceProfile
from repro.mcu.memory import Flash, SRAM
from repro.mcu.profiler import CostReport

__all__ = ["VirtualMCU", "DeployedModel"]


@dataclass
class DeployedModel:
    """A pipeline linked against one virtual device, ready for inference."""

    mcu: "VirtualMCU"
    pipeline: object  # repro.runtime.Pipeline
    weight_bytes: int
    footprint_bytes: int

    def infer(self, x: np.ndarray, *, strict: bool = True):
        """Run one inference; returns the pipeline result."""
        return self.pipeline.run(x, strict=strict)

    def cost_of(self, result) -> CostReport:
        return result.report


class VirtualMCU:
    """One simulated device instance with its SRAM and Flash."""

    def __init__(self, device: DeviceProfile):
        self.device = device
        self.sram = SRAM(device.usable_sram_bytes)
        self.flash = Flash(device.flash_bytes)
        self._deployed = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def pipeline_weight_bytes(pipeline) -> int:
        """Total constant bytes the pipeline's stages keep in Flash."""
        from repro.runtime.pipeline import (
            BottleneckStage,
            DenseStage,
            GlobalAvgPoolStage,
            PointwiseStage,
        )

        total = 0
        for st in pipeline.stages:
            if isinstance(st, PointwiseStage):
                total += st.weights.size
            elif isinstance(st, BottleneckStage):
                total += st.w_expand.size + st.w_dw.size + st.w_project.size
            elif isinstance(st, DenseStage):
                total += st.weights.size
            elif isinstance(st, GlobalAvgPoolStage):
                pass  # no parameters
            else:
                raise PlanError(f"unknown stage type {type(st).__name__}")
        return total

    def deploy(self, pipeline) -> DeployedModel:
        """Link a pipeline onto this device (Flash + SRAM checked).

        Raises :class:`OutOfMemoryError` when the weights exceed Flash or
        the activation plan exceeds SRAM — the two distinct ways a model
        fails to ship on a given part.
        """
        from repro.runtime.pipeline import (
            BottleneckStage,
            DenseStage,
            PointwiseStage,
        )

        weight_bytes = self.pipeline_weight_bytes(pipeline)
        plan = pipeline.plan()
        if plan.footprint_bytes > self.sram.capacity:
            raise OutOfMemoryError(
                requested=plan.footprint_bytes,
                capacity=self.sram.capacity,
                what="activation pool",
            )
        # register the constants region by region, enforcing Flash capacity
        tag = self._deployed
        self._deployed += 1
        for i, st in enumerate(pipeline.stages):
            if isinstance(st, PointwiseStage) or isinstance(st, DenseStage):
                self.flash.register(f"m{tag}.s{i}.w", st.weights)
            elif isinstance(st, BottleneckStage):
                self.flash.register(f"m{tag}.s{i}.expand", st.w_expand)
                self.flash.register(f"m{tag}.s{i}.dw", st.w_dw)
                self.flash.register(f"m{tag}.s{i}.project", st.w_project)
        return DeployedModel(
            mcu=self,
            pipeline=pipeline,
            weight_bytes=weight_bytes,
            footprint_bytes=plan.footprint_bytes,
        )

    # ------------------------------------------------------------------ #
    @property
    def flash_used(self) -> int:
        return self.flash.used

    @property
    def flash_free(self) -> int:
        return self.flash.capacity - self.flash.used
