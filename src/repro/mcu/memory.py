"""Byte-level SRAM and Flash models.

MCUs have no cache and no OS (paper Section 2.1): programs address a flat
SRAM directly and read constant weights from memory-mapped Flash.  These two
classes model exactly that — flat byte arrays with access counting — and are
the storage layer beneath :class:`repro.core.pool.CircularSegmentPool`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OutOfMemoryError, SegmentStateError

__all__ = ["SRAM", "Flash"]


class SRAM:
    """A flat on-chip SRAM of ``capacity`` bytes with access counters.

    Reads and writes take/return ``np.uint8`` arrays.  Out-of-range accesses
    raise :class:`OutOfMemoryError` — on the real part they would silently
    corrupt a neighbouring region or hard-fault; the simulator always faults.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"SRAM capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._data = np.zeros(self.capacity, dtype=np.uint8)
        self.bytes_read = 0
        self.bytes_written = 0

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.capacity:
            raise OutOfMemoryError(
                requested=addr + size, capacity=self.capacity, what="SRAM access"
            )

    def read(self, addr: int, size: int) -> np.ndarray:
        """Read ``size`` bytes starting at ``addr`` (returns a copy)."""
        self._check(addr, size)
        self.bytes_read += size
        return self._data[addr : addr + size].copy()

    def write(self, addr: int, data: np.ndarray) -> None:
        """Write a uint8 array at ``addr``."""
        data = np.ascontiguousarray(data, dtype=np.uint8).ravel()
        self._check(addr, data.size)
        self.bytes_written += data.size
        self._data[addr : addr + data.size] = data

    def fill(self, addr: int, size: int, value: int) -> None:
        """memset-equivalent, counted as writes."""
        self._check(addr, size)
        self.bytes_written += size
        self._data[addr : addr + size] = np.uint8(value)

    @property
    def total_traffic(self) -> int:
        return self.bytes_read + self.bytes_written

    def reset_counters(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0

    def snapshot(self) -> np.ndarray:
        """Copy of the full SRAM contents (for debugging/tests); not counted."""
        return self._data.copy()


class Flash:
    """Read-only weight storage.

    Regions are registered once (at "link time", mirroring how the ARM
    toolchain places constant arrays in .rodata) and then read by name.
    Writing after registration is impossible, like the real part at run time.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"Flash capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._regions: dict[str, np.ndarray] = {}
        self._used = 0
        self.bytes_read = 0

    def register(self, name: str, data: np.ndarray) -> None:
        """Place a constant array into Flash under ``name``."""
        if name in self._regions:
            raise SegmentStateError(f"flash region {name!r} already registered")
        blob = np.ascontiguousarray(data).view(np.uint8).ravel().copy()
        if self._used + blob.size > self.capacity:
            raise OutOfMemoryError(
                requested=self._used + blob.size,
                capacity=self.capacity,
                what=f"flash region {name!r}",
            )
        blob.flags.writeable = False
        self._regions[name] = blob
        self._used += blob.size

    def read(self, name: str, offset: int, size: int) -> np.ndarray:
        """Read ``size`` bytes of region ``name`` starting at ``offset``."""
        try:
            region = self._regions[name]
        except KeyError:
            raise SegmentStateError(f"unknown flash region {name!r}") from None
        if offset < 0 or offset + size > region.size:
            raise OutOfMemoryError(
                requested=offset + size,
                capacity=region.size,
                what=f"flash read from {name!r}",
            )
        self.bytes_read += size
        return region[offset : offset + size]

    def region_size(self, name: str) -> int:
        return self._regions[name].size

    @property
    def used(self) -> int:
        return self._used

    def reset_counters(self) -> None:
        self.bytes_read = 0
