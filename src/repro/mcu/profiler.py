"""Execution cost accounting.

Kernels (both the simulated ones in :mod:`repro.kernels` and the IR
interpreter) report their work into a :class:`Profiler`:

* instruction counts by mnemonic (converted to cycles via the device ISA),
* SRAM / Flash byte traffic,
* modulo (circular-buffer boundary) operations, which Section 5.3 calls out
  as the latency cost of small segments.

A finished profile is frozen into a :class:`CostReport` carrying cycles,
milliseconds and an energy breakdown for a specific device.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.mcu.device import DeviceProfile
from repro.mcu.energy import EnergyBreakdown, EnergyModel

__all__ = ["Profiler", "ProfilerSnapshot", "CostReport"]


@dataclass(frozen=True)
class ProfilerSnapshot:
    """Immutable copy of a profiler's counters at one point in time.

    Pipelines reuse a single :class:`Profiler` across stages; a snapshot
    taken before each stage lets ``Profiler.report(since=snap)`` freeze that
    stage's *delta* without instantiating a profiler per kernel.
    """

    instructions: dict[str, float]
    sram_bytes: int
    flash_bytes: int
    macs: int
    modulo_ops: int


@dataclass
class CostReport:
    """Frozen cost summary of one kernel/network execution on one device."""

    device: str
    cycles: float
    latency_ms: float
    sram_bytes: int
    flash_bytes: int
    macs: int
    modulo_ops: int
    energy: EnergyBreakdown
    instructions: dict[str, float] = field(default_factory=dict)
    #: optional named sub-reports (e.g. per pipeline stage); extensive
    #: fields of this report are the sums of the sub-reports when present
    stages: dict[str, "CostReport"] = field(default_factory=dict)

    @property
    def energy_mj(self) -> float:
        return self.energy.total_mj

    @property
    def throughput_inferences_per_s(self) -> float:
        if self.latency_ms <= 0:
            return float("inf")
        return 1000.0 / self.latency_ms

    def scaled(self, factor: float) -> "CostReport":
        """Linearly scale all extensive quantities (e.g. per-image → per-batch)."""
        return CostReport(
            device=self.device,
            cycles=self.cycles * factor,
            latency_ms=self.latency_ms * factor,
            sram_bytes=int(self.sram_bytes * factor),
            flash_bytes=int(self.flash_bytes * factor),
            macs=int(self.macs * factor),
            modulo_ops=int(self.modulo_ops * factor),
            energy=self.energy.scaled(factor),
            instructions={k: v * factor for k, v in self.instructions.items()},
            stages={k: r.scaled(factor) for k, r in self.stages.items()},
        )

    @staticmethod
    def combine(
        reports: list["CostReport"], names: list[str] | None = None
    ) -> "CostReport":
        """Sum reports from sequential kernels on the same device.

        ``names`` (one per report) attaches the inputs as named sub-reports
        on the combined result, so a pipeline can hand back per-stage and
        total cost in one :class:`CostReport`.
        """
        if not reports:
            raise ValueError("cannot combine an empty report list")
        if names is not None:
            if len(names) != len(reports):
                raise ValueError(
                    f"{len(names)} names for {len(reports)} reports"
                )
            if len(set(names)) != len(names):
                dupes = sorted({n for n in names if names.count(n) > 1})
                raise ValueError(
                    f"duplicate sub-report names {dupes}; stage names must "
                    "be unique for per-stage cost attribution"
                )
        device = reports[0].device
        if any(r.device != device for r in reports):
            raise ValueError("cannot combine reports from different devices")
        instructions: Counter[str] = Counter()
        for r in reports:
            instructions.update(r.instructions)
        return CostReport(
            device=device,
            cycles=sum(r.cycles for r in reports),
            latency_ms=sum(r.latency_ms for r in reports),
            sram_bytes=sum(r.sram_bytes for r in reports),
            flash_bytes=sum(r.flash_bytes for r in reports),
            macs=sum(r.macs for r in reports),
            modulo_ops=sum(r.modulo_ops for r in reports),
            energy=EnergyBreakdown.combine([r.energy for r in reports]),
            instructions=dict(instructions),
            stages=dict(zip(names, reports)) if names is not None else {},
        )


class Profiler:
    """Mutable cost accumulator used while a kernel executes.

    All ``count_*`` methods are cheap enough to call per segment (not per
    element); kernels batch element-level work into one call with a count.
    """

    def __init__(self, device: DeviceProfile):
        self.device = device
        self._instr: Counter[str] = Counter()
        self.sram_bytes = 0
        self.flash_bytes = 0
        self.macs = 0
        self.modulo_ops = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def count_instr(self, mnemonic: str, count: int | float = 1) -> None:
        """Record ``count`` executions of an ISA instruction."""
        if mnemonic not in self.device.isa:
            raise KeyError(
                f"{mnemonic!r} not modeled by {self.device.isa.name}"
            )
        self._instr[mnemonic] += count

    def count_macs(self, count: int) -> None:
        """Record multiply-accumulates (also charges SMLAD issue slots)."""
        self.macs += count
        # SMLAD performs 2 MACs per issue.
        self._instr["SMLAD"] += count / 2.0

    def count_sram(self, nbytes: int, *, store: bool = False) -> None:
        """Record SRAM traffic; charges LDR/STR at 4 bytes per issue."""
        self.sram_bytes += nbytes
        self._instr["STR" if store else "LDR"] += nbytes / 4.0

    def count_flash(self, nbytes: int) -> None:
        """Record Flash traffic; charges LDR_FLASH at 4 bytes per issue."""
        self.flash_bytes += nbytes
        self._instr["LDR_FLASH"] += nbytes / 4.0

    def count_modulo(self, count: int = 1, *, power_of_two: bool = False) -> None:
        """Record circular-buffer wrap arithmetic (Section 5.3 overhead).

        A power-of-two pool size lowers the modulo to a single AND; the
        general case needs UDIV+MLS.
        """
        self.modulo_ops += count
        if power_of_two:
            self._instr["AND"] += count
        else:
            self._instr["UDIV"] += count
            self._instr["MLS"] += count

    def count_branch(self, count: int = 1) -> None:
        """Record loop/boundary-check branches (CMP + B)."""
        self._instr["CMP"] += count
        self._instr["B"] += count

    def count_requantize(self, elements: int) -> None:
        """Record the fixed-point requantization epilogue for N elements."""
        self._instr["SQRDMULH"] += elements
        self._instr["SSAT"] += elements
        self._instr["PKHBT"] += elements / 2.0

    def add_cycles_raw(self, mnemonic: str, count: float) -> None:
        """Escape hatch used by baseline cost models (e.g. im2col memcpy)."""
        self._instr[mnemonic] += count

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    @property
    def cycles(self) -> float:
        isa = self.device.isa
        return sum(isa.cycles(m, c) for m, c in self._instr.items())

    def snapshot(self) -> ProfilerSnapshot:
        """Copy the counters so a later report can freeze only the delta."""
        return ProfilerSnapshot(
            instructions=dict(self._instr),
            sram_bytes=self.sram_bytes,
            flash_bytes=self.flash_bytes,
            macs=self.macs,
            modulo_ops=self.modulo_ops,
        )

    def report(self, *, since: ProfilerSnapshot | None = None) -> CostReport:
        """Freeze the current counters into a :class:`CostReport`.

        ``since`` subtracts an earlier :meth:`snapshot`, yielding the cost of
        just the work recorded in between — how a pipeline attributes
        per-stage cost while all stages share one profiler.
        """
        if since is None:
            instr = dict(self._instr)
            sram, flash = self.sram_bytes, self.flash_bytes
            macs, modulo = self.macs, self.modulo_ops
        else:
            instr = {
                m: c - since.instructions.get(m, 0.0)
                for m, c in self._instr.items()
                if c != since.instructions.get(m, 0.0)
            }
            sram = self.sram_bytes - since.sram_bytes
            flash = self.flash_bytes - since.flash_bytes
            macs = self.macs - since.macs
            modulo = self.modulo_ops - since.modulo_ops
        isa = self.device.isa
        cycles = sum(isa.cycles(m, c) for m, c in instr.items())
        energy = EnergyModel(self.device).energy(
            cycles=cycles, sram_bytes=sram, flash_bytes=flash
        )
        return CostReport(
            device=self.device.name,
            cycles=cycles,
            latency_ms=self.device.cycles_to_ms(cycles),
            sram_bytes=sram,
            flash_bytes=flash,
            macs=macs,
            modulo_ops=modulo,
            energy=energy,
            instructions=instr,
        )
