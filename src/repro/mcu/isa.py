"""Instruction cost model for ARM Cortex-M4 / Cortex-M7.

The paper's kernels are built from a handful of instructions (Section 6.1):

* ``SMLAD`` — dual 16-bit multiply-accumulate (2 MACs/issue on M4).
* ``SADD16`` — dual 16-bit add, used when widening int8 pairs.
* ``PKHBT`` — pack halfwords, used by the Broadcast intrinsic.
* ``LDR``/``STR`` — 32-bit loads/stores to SRAM.
* Flash reads go through the ART accelerator / prefetch and cost more.

Cycle counts follow the ARM technical reference manuals: the M4 is a
single-issue 3-stage core (most ALU ops are 1 cycle, loads 2 cycles),
the M7 is dual-issue 6-stage (effective ~0.5-1 cycle ALU, 1-cycle DTCM
loads).  We model the *effective* per-instruction cost as a float so the
dual-issue M7 can express fractional throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

__all__ = [
    "Instruction",
    "InstructionSet",
    "CORTEX_M4_ISA",
    "CORTEX_M7_ISA",
]


@dataclass(frozen=True)
class Instruction:
    """One modeled instruction: mnemonic, effective cycles, work description."""

    mnemonic: str
    cycles: float
    description: str


class InstructionSet:
    """A lookup table of modeled instructions for one core.

    The table is immutable after construction; kernels query it through
    :meth:`cycles` so that a typo in a mnemonic fails loudly instead of
    silently costing zero.
    """

    def __init__(self, name: str, instructions: Mapping[str, Instruction]):
        self.name = name
        self._table = MappingProxyType(dict(instructions))

    def __contains__(self, mnemonic: str) -> bool:
        return mnemonic in self._table

    def __getitem__(self, mnemonic: str) -> Instruction:
        try:
            return self._table[mnemonic]
        except KeyError:
            raise KeyError(
                f"instruction {mnemonic!r} is not modeled for {self.name}; "
                f"known: {sorted(self._table)}"
            ) from None

    def cycles(self, mnemonic: str, count: int | float = 1) -> float:
        """Effective cycles for ``count`` executions of ``mnemonic``."""
        return self._table[mnemonic].cycles * count

    @property
    def mnemonics(self) -> tuple[str, ...]:
        return tuple(sorted(self._table))


def _make_isa(name: str, rows: list[tuple[str, float, str]]) -> InstructionSet:
    return InstructionSet(
        name, {m: Instruction(m, c, d) for (m, c, d) in rows}
    )


#: Cortex-M4 (STM32-F411RE): single issue, 1-cycle DSP ops, 2-cycle loads.
CORTEX_M4_ISA = _make_isa(
    "cortex-m4",
    [
        ("SMLAD", 1.0, "dual 16-bit MAC, 2 MACs per issue"),
        ("SMLABB", 1.0, "single 16-bit MAC"),
        ("SADD16", 1.0, "dual 16-bit add"),
        ("SXTB16", 1.0, "sign-extend packed int8 pairs to int16"),
        ("PKHBT", 1.0, "pack halfwords (Broadcast intrinsic)"),
        ("LDR", 2.0, "32-bit SRAM load"),
        ("STR", 1.0, "32-bit SRAM store (buffered)"),
        ("LDR_FLASH", 3.0, "32-bit Flash load through prefetch"),
        ("MOV", 1.0, "register move"),
        ("ADD", 1.0, "32-bit add"),
        ("AND", 1.0, "bitwise and (power-of-two modulo)"),
        ("UDIV", 8.0, "unsigned divide (general modulo)"),
        ("MLS", 2.0, "multiply-subtract (remainder of general modulo)"),
        ("CMP", 1.0, "compare (boundary check)"),
        ("B", 1.5, "branch, averaged taken/not-taken"),
        ("SSAT", 1.0, "signed saturate (requantize clamp)"),
        ("SQRDMULH", 2.0, "saturating rounding doubling high multiply"),
    ],
)

#: Cortex-M7 (STM32-F767ZI): dual issue, 1-cycle DTCM loads.
CORTEX_M7_ISA = _make_isa(
    "cortex-m7",
    [
        ("SMLAD", 0.5, "dual 16-bit MAC, dual-issued"),
        ("SMLABB", 0.5, "single 16-bit MAC, dual-issued"),
        ("SADD16", 0.5, "dual 16-bit add, dual-issued"),
        ("SXTB16", 0.5, "sign-extend packed int8 pairs to int16"),
        ("PKHBT", 0.5, "pack halfwords (Broadcast intrinsic)"),
        ("LDR", 1.0, "32-bit DTCM load"),
        ("STR", 1.0, "32-bit DTCM store"),
        ("LDR_FLASH", 2.0, "32-bit Flash load through ART accelerator"),
        ("MOV", 0.5, "register move"),
        ("ADD", 0.5, "32-bit add"),
        ("AND", 0.5, "bitwise and (power-of-two modulo)"),
        ("UDIV", 6.0, "unsigned divide (general modulo)"),
        ("MLS", 1.0, "multiply-subtract (remainder of general modulo)"),
        ("CMP", 0.5, "compare (boundary check)"),
        ("B", 1.0, "branch, averaged taken/not-taken"),
        ("SSAT", 0.5, "signed saturate (requantize clamp)"),
        ("SQRDMULH", 1.0, "saturating rounding doubling high multiply"),
    ],
)
