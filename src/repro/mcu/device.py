"""Device profiles for the evaluation platforms.

The paper uses STM32-F411RE (Cortex-M4, 128 KB SRAM, 512 KB Flash) and
STM32-F767ZI (Cortex-M7, 512 KB SRAM, 2 MB Flash).  A profile bundles the
memory capacities, clock rate, instruction set cost table and energy
coefficients; all latency/energy results in the benchmark harness are
computed against one of these profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mcu.isa import CORTEX_M4_ISA, CORTEX_M7_ISA, InstructionSet

__all__ = ["DeviceProfile", "STM32F411RE", "STM32F767ZI", "DEVICES", "get_device"]

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of one MCU platform.

    Energy coefficients are derived from the STM32 datasheet current figures
    (run-mode mA at V=3.3 V divided by clock) split into a core component and
    per-access memory components.  They are *calibration constants* of the
    simulator, documented here and frozen across all experiments.

    Attributes
    ----------
    name / chip / core:
        Identification strings matching the paper's Table 1.
    sram_bytes / flash_bytes:
        Capacities of on-chip SRAM (activations) and Flash (weights).
    clock_hz:
        Maximum rated clock, used to convert cycles to seconds.
    isa:
        Instruction cost table for the core.
    energy_per_cycle_nj:
        Core energy per clock cycle (nJ).
    energy_per_sram_byte_nj / energy_per_flash_byte_nj:
        Additional energy per byte moved from/to SRAM and Flash (nJ).
    reserved_ram_bytes:
        RAM the runtime itself consumes (stack, runtime structs, vector
        table copies); deducted from the budget available to tensors.
    """

    name: str
    chip: str
    core: str
    sram_bytes: int
    flash_bytes: int
    clock_hz: int
    isa: InstructionSet = field(repr=False)
    energy_per_cycle_nj: float
    energy_per_sram_byte_nj: float
    energy_per_flash_byte_nj: float
    reserved_ram_bytes: int = 2 * KB

    @property
    def sram_kb(self) -> float:
        return self.sram_bytes / KB

    @property
    def flash_kb(self) -> float:
        return self.flash_bytes / KB

    @property
    def usable_sram_bytes(self) -> int:
        """SRAM available to tensor data after the runtime reservation."""
        return self.sram_bytes - self.reserved_ram_bytes

    @property
    def device_class(self) -> str:
        """Short core-class tag (``"M4"``, ``"M7"``) for fleet grouping."""
        return self.core.split("-")[-1]

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def cycles_to_ms(self, cycles: float) -> float:
        return 1e3 * self.cycles_to_seconds(cycles)

    def fits(self, footprint_bytes: int) -> bool:
        """Whether a tensor footprint fits in usable SRAM."""
        return footprint_bytes <= self.usable_sram_bytes


#: STM32-F411RE: the 128 KB part where TinyEngine goes OOM in Figure 7.
STM32F411RE = DeviceProfile(
    name="STM32-F411RE",
    chip="STM32F411RE",
    core="ARM Cortex-M4",
    sram_bytes=128 * KB,
    flash_bytes=512 * KB,
    clock_hz=100_000_000,
    isa=CORTEX_M4_ISA,
    # 146 uA/MHz @ 3.3 V (datasheet run mode) ~= 0.48 nJ/cycle total;
    # split ~60/40 between core and memory traffic.
    energy_per_cycle_nj=0.30,
    energy_per_sram_byte_nj=0.08,
    energy_per_flash_byte_nj=0.24,
)

#: STM32-F767ZI: the 512 KB part used for Figure 8 / Figure 10.
STM32F767ZI = DeviceProfile(
    name="STM32-F767ZI",
    chip="STM32F767ZI",
    core="ARM Cortex-M7",
    sram_bytes=512 * KB,
    flash_bytes=2 * MB,
    clock_hz=216_000_000,
    isa=CORTEX_M7_ISA,
    # 7 mA/MHz-class core; higher absolute power, lower energy/op than M4.
    energy_per_cycle_nj=0.50,
    energy_per_sram_byte_nj=0.06,
    energy_per_flash_byte_nj=0.20,
)

DEVICES: dict[str, DeviceProfile] = {
    STM32F411RE.name: STM32F411RE,
    STM32F767ZI.name: STM32F767ZI,
    "F411RE": STM32F411RE,
    "F767ZI": STM32F767ZI,
}


def get_device(name: str) -> DeviceProfile:
    """Look up a device profile by name (accepts short aliases)."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known: {sorted(set(DEVICES))}"
        ) from None
