"""Error budgets and retry budgets: availability as a first-class gate.

Two complementary budgets close the availability loop the chaos-storm
replays open:

* :class:`RetryBudget` — an admission-filled token bucket capping the
  *fleet-wide* retry ratio.  Every admitted request deposits
  ``ratio`` tokens; every retry beyond the mandatory quarantine
  isolation run withdraws one.  Under a storm this is the difference
  between a bounded availability dip and retry amplification collapse:
  no matter how many requests are poisoned, retries can never exceed
  ``burst + ratio x admitted``.  Deliberately clock-free — the bucket
  fills with *work*, not time — so a dilated replay budgets identically
  at any speed and the grant/deny sequence is deterministic.
* :class:`ErrorBudget` + :func:`availability_report` — per-window
  availability (success ratio vs admitted) graded against an SLO
  target, expressed as a *burn rate* (1.0 = exactly consuming the
  budget; >1 = alert), with storm windows separable so a chaos eval
  can demand steady-state availability outside the storm and bounded
  burn inside it.
* :func:`repair_metrics` — MTTR/MTBF derived from the dispatcher's
  audit trail (crash / pool-rebuild / degrade / restore events), the
  classic reliability pair production reviews ask for.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.fleet.telemetry import WindowedTelemetry
    from repro.serving.control import ConfigChange

__all__ = [
    "RetryBudget",
    "ErrorBudget",
    "WindowAvailability",
    "AvailabilityReport",
    "RepairMetrics",
    "availability_report",
    "repair_metrics",
]


class RetryBudget:
    """Admission-filled token bucket bounding fleet-wide retries.

    ``allow()`` grants iff ``granted < burst + ratio x admitted`` —
    a pure function of the admission/grant history, so a seeded replay
    reproduces the exact same grant/deny sequence at any dilation or
    worker count.  Thread-safe; counters survive reconfiguration
    (:meth:`reconfigure` swaps the knobs, never the history).
    """

    def __init__(self, ratio: float = 0.1, burst: int = 8):
        self._validate(ratio, burst)
        self._lock = threading.Lock()
        self._ratio = float(ratio)
        self._burst = int(burst)
        self._admitted = 0
        self._granted = 0
        self._denied = 0

    @staticmethod
    def _validate(ratio: float, burst: int) -> None:
        if not (0.0 <= ratio <= 1.0):
            raise ConfigError(
                f"retry budget ratio must be in [0, 1], got {ratio}"
            )
        if burst < 0:
            raise ConfigError(
                f"retry budget burst must be >= 0, got {burst}"
            )

    def reconfigure(self, ratio: float, burst: int) -> None:
        """Adopt new knobs, preserving the admission/grant history."""
        self._validate(ratio, burst)
        with self._lock:
            self._ratio = float(ratio)
            self._burst = int(burst)

    def note_admitted(self, n: int = 1) -> None:
        """Deposit: ``n`` requests were admitted."""
        with self._lock:
            self._admitted += n

    def allow(self) -> bool:
        """Withdraw one retry token if the budget permits."""
        with self._lock:
            if self._granted < self._burst + self._ratio * self._admitted:
                self._granted += 1
                return True
            self._denied += 1
            return False

    @property
    def snapshot(self) -> Mapping[str, float]:
        """Counters + knobs (a consistent point-in-time copy)."""
        with self._lock:
            return {
                "ratio": self._ratio,
                "burst": self._burst,
                "admitted": self._admitted,
                "granted": self._granted,
                "denied": self._denied,
            }


@dataclass(frozen=True)
class ErrorBudget:
    """An availability SLO expressed as a budget.

    ``slo=0.995`` means 0.5% of admitted requests per window may fail
    before the window burns more than its budget (burn rate > 1).
    """

    slo: float = 0.995

    def validate(self) -> None:
        if not (0.0 < self.slo < 1.0):
            raise ConfigError(
                f"availability SLO must be in (0, 1), got {self.slo}"
            )

    @property
    def budget(self) -> float:
        """The allowed unavailability per window (``1 - slo``)."""
        return 1.0 - self.slo

    def burn_rate(self, availability: float) -> float:
        """How fast a window consumes its budget (1.0 = exactly)."""
        return (1.0 - availability) / self.budget


@dataclass(frozen=True)
class WindowAvailability:
    """Availability of one (window, group) bucket vs the budget."""

    window: int
    group: str
    admitted: int
    completed: int
    failed: int
    shed: int
    availability: float
    burn_rate: float
    #: True when the window burned more than its whole budget
    alert: bool
    #: True when the caller marked this window as inside a storm
    in_storm: bool = False


@dataclass(frozen=True)
class AvailabilityReport:
    """The fleet-wide error-budget report for one replay/run."""

    budget: ErrorBudget
    windows: tuple[WindowAvailability, ...] = field(repr=False)
    mttr_s: float | None = None
    mtbf_s: float | None = None

    def _ratio(self, rows: Sequence[WindowAvailability]) -> float | None:
        admitted = sum(w.admitted for w in rows)
        if admitted == 0:
            return None
        ok = sum(w.completed for w in rows)
        return ok / admitted

    @property
    def overall_availability(self) -> float | None:
        """Admitted-weighted availability across every window."""
        return self._ratio(self.windows)

    @property
    def steady_availability(self) -> float | None:
        """Availability over the windows *outside* any storm."""
        return self._ratio([w for w in self.windows if not w.in_storm])

    @property
    def storm_availability(self) -> float | None:
        """Availability over the windows *inside* a storm."""
        return self._ratio([w for w in self.windows if w.in_storm])

    @property
    def worst_window(self) -> WindowAvailability | None:
        if not self.windows:
            return None
        return min(self.windows, key=lambda w: w.availability)

    @property
    def alerts(self) -> tuple[WindowAvailability, ...]:
        """Windows that burned past their budget, worst first."""
        return tuple(
            sorted(
                (w for w in self.windows if w.alert),
                key=lambda w: -w.burn_rate,
            )
        )

    def summary(self) -> str:
        """One-line report for tables and audit trails."""

        def pct(x: float | None) -> str:
            return "n/a" if x is None else f"{100.0 * x:.3f}%"

        def secs(x: float | None) -> str:
            return "n/a" if x is None else f"{x:.3f}s"

        return (
            f"slo {100.0 * self.budget.slo:.2f}%, "
            f"overall {pct(self.overall_availability)}, "
            f"steady {pct(self.steady_availability)}, "
            f"storm {pct(self.storm_availability)}, "
            f"{len(self.alerts)} alert(s), "
            f"mttr {secs(self.mttr_s)}, mtbf {secs(self.mtbf_s)}"
        )


def availability_report(
    telemetry: "WindowedTelemetry",
    *,
    budget: ErrorBudget | None = None,
    view: str = "tenant",
    storm_windows: Iterable[int] = (),
    audit: Sequence["ConfigChange"] = (),
    horizon_s: float | None = None,
) -> AvailabilityReport:
    """Grade a replay's windowed telemetry against an error budget.

    ``storm_windows`` marks window ids (any group) as inside a storm so
    the report can split steady-state availability from in-storm burn.
    ``audit`` (the dispatcher's :class:`ConfigChange` trail) feeds the
    MTTR/MTBF derivation; ``horizon_s`` bounds MTBF when the run had
    fewer than two failures.
    """
    budget = budget or ErrorBudget()
    budget.validate()
    storm = frozenset(storm_windows)
    source = (
        telemetry.per_tenant()
        if view == "tenant"
        else telemetry.per_device_class()
    )
    rows: list[WindowAvailability] = []
    for (window, group), stats in sorted(source.items()):
        admitted = stats.completed + stats.failed + stats.shed
        if admitted == 0:
            continue
        availability = stats.completed / admitted
        burn = budget.burn_rate(availability)
        rows.append(
            WindowAvailability(
                window=window,
                group=group,
                admitted=admitted,
                completed=stats.completed,
                failed=stats.failed,
                shed=stats.shed,
                availability=availability,
                burn_rate=burn,
                alert=burn > 1.0,
                in_storm=window in storm,
            )
        )
    repair = repair_metrics(audit, horizon_s=horizon_s)
    return AvailabilityReport(
        budget=budget,
        windows=tuple(rows),
        mttr_s=repair.mttr_s,
        mtbf_s=repair.mtbf_s,
    )


# --------------------------------------------------------------------------- #
# MTTR / MTBF from the audit trail
# --------------------------------------------------------------------------- #
#: audit kinds that mark a failure onset
_FAILURE_KINDS = frozenset({"crash", "pool", "degrade"})

_TENANT_RE = re.compile(r"tenant '([^']+)'")


@dataclass(frozen=True)
class RepairMetrics:
    """MTTR/MTBF derived from the dispatcher audit trail.

    MTTR pairs each ``degrade`` with the next ``restore`` for the same
    tenant (the only failure class whose recovery is a *separate*
    audited event — crash respawns and pool rebuilds are logged at
    recovery time, repair already done).  MTBF is the mean gap between
    consecutive failure-onset events of any kind; with fewer than two
    failures it falls back to ``horizon_s`` over the failure count.
    """

    failures: int = 0
    repairs: int = 0
    mttr_s: float | None = None
    mtbf_s: float | None = None


def _tenant_of(change: "ConfigChange") -> str | None:
    for line in change.summary:
        m = _TENANT_RE.search(line)
        if m:
            return m.group(1)
    return None


def repair_metrics(
    audit: Sequence["ConfigChange"], *, horizon_s: float | None = None
) -> RepairMetrics:
    """Derive :class:`RepairMetrics` from an audit trail (oldest first)."""
    failures: list[float] = []
    repairs = 0
    open_degrades: dict[str, list[float]] = {}
    repair_spans: list[float] = []
    for change in audit:
        if change.kind in _FAILURE_KINDS:
            failures.append(change.at_s)
            if change.kind == "degrade":
                tenant = _tenant_of(change) or ""
                open_degrades.setdefault(tenant, []).append(change.at_s)
            else:
                # crash/pool records land at recovery time: the repair
                # is already done, observable repair span ~ 0
                repairs += 1
        elif change.kind == "restore":
            tenant = _tenant_of(change) or ""
            pending = open_degrades.get(tenant)
            if pending:
                repair_spans.append(change.at_s - pending.pop(0))
                repairs += 1
    mttr = (
        sum(repair_spans) / len(repair_spans) if repair_spans else None
    )
    mtbf: float | None = None
    if len(failures) >= 2:
        mtbf = (failures[-1] - failures[0]) / (len(failures) - 1)
    elif failures and horizon_s is not None:
        mtbf = horizon_s / len(failures)
    return RepairMetrics(
        failures=len(failures),
        repairs=repairs,
        mttr_s=mttr,
        mtbf_s=mtbf,
    )
