"""Admission-controlled request queue with deadline-aware micro-batching.

The serving front-end half of the dispatcher: callers submit
:class:`Ticket`\\ s (one per request), workers pop *micro-batches*.  The
queue owns the two scheduling policies the ISSUE's north star needs:

* **admission control** — the queue is bounded; a submit against a full
  queue raises :class:`~repro.errors.AdmissionError` instead of letting
  latency grow without bound.  Back-pressure is explicit and counted.
* **deadline-aware batch forming** — a batch is flushed to a worker when
  it reaches ``max_batch``, when the oldest queued request has waited
  ``batch_timeout_s`` (the classic micro-batching knob), or when that
  request's *deadline budget* forces dispatch: once the time left to its
  deadline shrinks to the tenant's estimated batch service time, waiting
  for more traffic would convert a deadline hit into a miss.

Batches are always formed from the **globally oldest** request's tenant
(requests of different tenants run different models and can never share
a stacked GEMM).  Because the head of the queue defines every batch,
tenants are served FIFO at batch granularity — a heavy tenant cannot
starve a light one, which the dispatcher's starvation tests assert.

All state is guarded by one condition variable; ``pop_batch`` re-derives
its view of the queue after every wait, so any number of workers can
block in it concurrently without double-claiming a request.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Mapping

import numpy as np

from repro.errors import AdmissionError, ServingError

__all__ = ["Ticket", "RequestQueue"]


class Ticket:
    """One submitted request: feeds in, a future for the result out.

    Created by :meth:`~repro.serving.dispatcher.Dispatcher.submit`;
    fulfilled (or failed) exactly once by a dispatcher worker.
    """

    __slots__ = (
        "tenant", "feeds", "request_seq", "enqueue_t", "deadline_t",
        "_event", "_result", "_error",
    )

    def __init__(
        self,
        tenant: str,
        feeds: Mapping[str, np.ndarray],
        request_seq: int,
        enqueue_t: float,
        deadline_t: float,
    ):
        self.tenant = tenant
        self.feeds = feeds
        #: submission order over the dispatcher's lifetime (all tenants)
        self.request_seq = request_seq
        #: monotonic-clock submission instant
        self.enqueue_t = enqueue_t
        #: monotonic-clock deadline; completion after it counts as a miss
        self.deadline_t = deadline_t
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether a worker has fulfilled (or failed) this request."""
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block for the :class:`DispatchResult`; re-raise worker errors."""
        if not self._event.wait(timeout):
            raise ServingError(
                f"request {self.request_seq} ({self.tenant!r}) not served "
                f"within {timeout}s — the dispatcher may be closed or "
                "overloaded; raise the timeout or add workers"
            )
        if self._error is not None:
            raise self._error
        return self._result

    # -- worker side ---------------------------------------------------- #
    def _fulfill(self, result) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class RequestQueue:
    """Bounded FIFO of tickets with micro-batch forming.

    Parameters
    ----------
    max_depth:
        Admission-control bound on queued (not yet dispatched) requests.
    now:
        Clock override for tests (defaults to :func:`time.monotonic`).
    """

    def __init__(
        self, max_depth: int, *, now: Callable[[], float] = time.monotonic
    ):
        if max_depth <= 0:
            raise ServingError(
                f"queue max_depth must be positive, got {max_depth}"
            )
        self.max_depth = max_depth
        self._now = now
        self._items: list[Ticket] = []
        self._cond = threading.Condition()
        self._closed = False
        #: admission-control rejections over the queue's lifetime
        self.rejected = 0
        #: deepest the queue ever got
        self.peak_depth = 0

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def put(self, ticket: Ticket) -> None:
        """Admit ``ticket`` or raise :class:`AdmissionError` (queue full)."""
        with self._cond:
            if self._closed:
                raise ServingError(
                    "queue is closed; the dispatcher is shutting down"
                )
            if len(self._items) >= self.max_depth:
                self.rejected += 1
                raise AdmissionError(
                    f"request queue at capacity ({self.max_depth}); "
                    "retry later, raise max_queue_depth, or add workers"
                )
            self._items.append(ticket)
            self.peak_depth = max(self.peak_depth, len(self._items))
            self._cond.notify_all()

    def close(self) -> None:
        """Stop admitting; workers drain what is queued, then get ``None``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def pop_batch(
        self,
        max_batch: int,
        batch_timeout_s: float,
        service_estimate: Callable[[str], float | None],
    ) -> list[Ticket] | None:
        """Block until a micro-batch is due; ``None`` once closed and empty.

        The batch holds the oldest request plus every other queued
        request of the *same tenant* in FIFO order (capped at
        ``max_batch``).  Flush happens at whichever comes first:

        * the batch is full,
        * the oldest request has waited ``batch_timeout_s``,
        * the oldest request's remaining deadline budget drops to the
          tenant's estimated service time (``service_estimate(tenant)``;
          ``None`` while the tenant has no history),
        * the queue is closed (drain what is there).

        Safe for any number of concurrent worker threads: the queue view
        is re-derived under the lock after every wait, and removal is
        atomic with the flush decision.
        """
        with self._cond:
            while True:
                if not self._items:
                    if self._closed:
                        return None
                    self._cond.wait()
                    continue
                head = self._items[0]
                tenant = head.tenant
                batch = [t for t in self._items if t.tenant == tenant]
                if len(batch) > max_batch:
                    batch = batch[:max_batch]
                now_t = self._now()
                flush_at = head.enqueue_t + batch_timeout_s
                est = service_estimate(tenant)
                if est is not None:
                    # dispatch early enough that service can still finish
                    # inside the oldest request's deadline
                    flush_at = min(flush_at, head.deadline_t - est)
                if (
                    len(batch) >= max_batch
                    or self._closed
                    or now_t >= flush_at
                ):
                    for t in batch:
                        self._items.remove(t)
                    return batch
                self._cond.wait(flush_at - now_t)
