"""Admission-controlled request queue with QoS-aware micro-batching.

The serving front-end half of the dispatcher: callers submit
:class:`Ticket`\\ s (one per request), workers pop *micro-batches*.  The
queue owns the scheduling policies of the serving layer, all of them
driven by the declarative :class:`~repro.serving.control.FleetConfig`
it subscribes to:

* **admission control** — the queue is bounded globally
  (``max_queue_depth``) and per tenant (the policy ``quota``); a submit
  over either bound raises :class:`~repro.errors.AdmissionError`
  instead of letting latency grow without bound.  Back-pressure is
  explicit and counted.
* **priority load shedding** — when the queue is full and a
  higher-priority request arrives, the newest queued request of the
  *lowest* priority class is evicted (its waiter gets the
  :class:`AdmissionError`) so important traffic is never turned away
  while junk occupies the queue.
* **QoS-aware batch forming** — a tenant's batch becomes *due* when it
  reaches ``max_batch``, when its oldest request has waited
  ``batch_timeout_s``, or when that request's deadline budget shrinks
  to the tenant's estimated batch service time.  Among due tenants the
  former picks the highest priority class first, then the smallest
  weighted stride pass inside the class (a weight-2 tenant gets ~2x the
  slots of a weight-1 peer), then FIFO arrival.  ``scheduling="fifo"``
  restores the pre-control-plane head-tenant arrival order.

Batches are always single-tenant (different tenants run different
models and can never share a stacked GEMM) and FIFO *within* the
tenant.  All state is guarded by one condition variable; ``pop_batch``
re-derives its view after every wait, so any number of workers can
block in it concurrently without double-claiming a request, and a
live ``apply_config`` lands at the next scheduling decision.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Mapping

import numpy as np

from repro.errors import AdmissionError, ServingError
from repro.serving.control import FleetConfig

__all__ = ["Ticket", "RequestQueue"]


class Ticket:
    """One submitted request: feeds in, a future for the result out.

    Created by :meth:`~repro.serving.dispatcher.Dispatcher.submit`;
    fulfilled (or failed) exactly once by a dispatcher worker — or
    failed by the queue itself when priority load shedding evicts it.
    """

    __slots__ = (
        "tenant", "feeds", "request_seq", "enqueue_t", "deadline_t",
        "_event", "_result", "_error",
    )

    def __init__(
        self,
        tenant: str,
        feeds: Mapping[str, np.ndarray],
        request_seq: int,
        enqueue_t: float,
        deadline_t: float,
    ):
        self.tenant = tenant
        self.feeds = feeds
        #: submission order over the dispatcher's lifetime (all tenants)
        self.request_seq = request_seq
        #: monotonic-clock submission instant
        self.enqueue_t = enqueue_t
        #: monotonic-clock deadline; completion after it counts as a miss
        self.deadline_t = deadline_t
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether a worker has fulfilled (or failed) this request."""
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block for the :class:`DispatchResult`; re-raise worker errors."""
        if not self._event.wait(timeout):
            raise ServingError(
                f"request {self.request_seq} ({self.tenant!r}) not served "
                f"within {timeout}s — the dispatcher may be closed or "
                "overloaded; raise the timeout or add workers"
            )
        if self._error is not None:
            raise self._error
        return self._result

    # -- worker side ---------------------------------------------------- #
    def _fulfill(self, result) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class RequestQueue:
    """Bounded ticket queue with QoS-aware micro-batch forming.

    Parameters
    ----------
    max_depth:
        Admission-control bound (shorthand for a default
        :class:`FleetConfig` with that ``max_queue_depth``).
    config:
        Full declarative config; overrides ``max_depth``.  The queue is
        a :class:`~repro.serving.control.ConfigSubscriber` — a live
        dispatcher swaps configs via :meth:`apply_config`.
    now:
        Clock override for tests (defaults to :func:`time.monotonic`).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        *,
        config: FleetConfig | None = None,
        now: Callable[[], float] = time.monotonic,
    ):
        if config is None:
            config = FleetConfig(
                max_queue_depth=max_depth if max_depth is not None else 256
            )
        config.validate()
        self._config = config
        self._now = now
        self._items: list[Ticket] = []
        self._cond = threading.Condition()
        self._closed = False
        #: weighted-stride pass per tenant (the fairness state)
        self._pass: dict[str, float] = {}
        #: admission-control rejections over the queue's lifetime
        self.rejected = 0
        #: queued requests evicted by priority load shedding
        self.shed = 0
        #: deepest the queue ever got
        self.peak_depth = 0

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def max_depth(self) -> int:
        """The live global admission bound (config-derived)."""
        return self._config.max_queue_depth

    # ------------------------------------------------------------------ #
    # control plane
    # ------------------------------------------------------------------ #
    def apply_config(
        self, old: FleetConfig | None, new: FleetConfig
    ) -> None:
        """Adopt ``new`` (:class:`ConfigSubscriber` protocol).

        Takes effect at the next admission / scheduling decision:
        already-queued requests above a tightened quota or depth bound
        stay queued and drain normally — reconfiguration never drops
        work that was legally admitted (only priority shedding does,
        and only in favor of strictly more important work).
        """
        with self._cond:
            self._config = new
            self._cond.notify_all()

    def kick(self) -> None:
        """Wake every blocked ``pop_batch`` to re-read external state.

        Used by the dispatcher after worker retirements are posted so a
        worker parked in the wait loop notices its ``stop`` signal.
        """
        with self._cond:
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def put(self, ticket: Ticket) -> None:
        """Admit ``ticket`` or raise :class:`AdmissionError`.

        Over-quota and over-depth submissions are rejected — except
        that a full queue holding strictly lower-priority work sheds
        its newest lowest-priority request (failing *that* ticket with
        :class:`AdmissionError`) to admit the more important newcomer.
        """
        with self._cond:
            if self._closed:
                raise ServingError(
                    "queue is closed; the dispatcher is shutting down"
                )
            cfg = self._config
            policy = cfg.policy(ticket.tenant)
            if policy.quota is not None:
                queued = sum(
                    1 for t in self._items if t.tenant == ticket.tenant
                )
                if queued >= policy.quota:
                    self.rejected += 1
                    raise AdmissionError(
                        f"tenant {ticket.tenant!r} is at its admission "
                        f"quota ({policy.quota} queued); retry later or "
                        "raise the tenant's quota via apply_config"
                    )
            if len(self._items) >= cfg.max_queue_depth:
                victim = self._shed_candidate(policy.priority)
                if victim is None:
                    self.rejected += 1
                    raise AdmissionError(
                        f"request queue at capacity "
                        f"({cfg.max_queue_depth}); retry later, raise "
                        "max_queue_depth, or add workers"
                    )
                self._items.remove(victim)
                self.shed += 1
                victim._fail(
                    AdmissionError(
                        f"request {victim.request_seq} "
                        f"({victim.tenant!r}, priority "
                        f"{cfg.policy(victim.tenant).priority}) was shed "
                        "from a full queue to admit higher-priority "
                        "work; retry later or raise max_queue_depth"
                    )
                )
            self._seed_pass(ticket.tenant)
            self._items.append(ticket)
            self.peak_depth = max(self.peak_depth, len(self._items))
            self._cond.notify_all()

    def _shed_candidate(self, incoming_priority: int) -> Ticket | None:
        """The queued ticket to evict for an ``incoming_priority`` request.

        The *newest* request of the strictly-lowest priority class below
        the newcomer (newest: it has waited least, so failing it wastes
        the least progress).  ``None`` when nothing queued is strictly
        less important — then the newcomer itself is rejected.
        """
        cfg = self._config
        victim: Ticket | None = None
        victim_priority = incoming_priority
        for t in self._items:
            p = cfg.policy(t.tenant).priority
            if p < victim_priority or (
                victim is not None
                and p == victim_priority
                and t.request_seq > victim.request_seq
            ):
                victim = t
                victim_priority = p
        return victim

    def _seed_pass(self, tenant: str) -> None:
        """Stride bookkeeping for a tenant (re)entering the queue.

        A tenant with no queued work joins at the *minimum* pass of the
        currently active tenants (the virtual time), so an idle spell
        neither banks an unfair burst (a stale low pass) nor penalizes
        the return.  An empty queue resets the epoch entirely, keeping
        the passes bounded over a long-lived dispatcher.
        """
        if not self._items:
            self._pass.clear()
            self._pass[tenant] = 0.0
            return
        if any(t.tenant == tenant for t in self._items):
            return
        floor = min(
            self._pass.get(t.tenant, 0.0) for t in self._items
        )
        self._pass[tenant] = max(self._pass.get(tenant, 0.0), floor)

    def close(self) -> None:
        """Stop admitting; workers drain what is queued, then get ``None``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list[Ticket]:
        """Atomically remove and return every queued ticket.

        The dispatcher's close path calls this after the worker join
        deadline: whatever is still queued then has no worker left to
        serve it, and each ticket must be *failed* (never abandoned) so
        no waiter deadlocks on a dispatcher that already shut down.
        """
        with self._cond:
            items, self._items = self._items, []
            self._pass.clear()
            self._cond.notify_all()
            return items

    # ------------------------------------------------------------------ #
    # batch forming
    # ------------------------------------------------------------------ #
    def pop_batch(
        self,
        max_batch: int,
        batch_timeout_s: float,
        service_estimate: Callable[[str], float | None],
        *,
        stop: Callable[[], bool] | None = None,
    ) -> list[Ticket] | None:
        """Block until a micro-batch is due; ``None`` once closed and empty.

        A tenant is *due* when its queued count reaches ``max_batch``,
        its oldest request has waited ``batch_timeout_s``, that
        request's remaining deadline budget drops to the tenant's
        estimated service time (``service_estimate(tenant)``; ``None``
        while the tenant has no history), or the queue is closed
        (drain).  Among due tenants the scheduler picks by priority
        class, then weighted stride pass, then arrival order; the batch
        is the tenant's oldest ``max_batch`` requests in FIFO order.

        ``stop`` (checked after every wake) lets the dispatcher retire
        this worker without closing the queue — the autoscaler's shrink
        path; a retired pop returns ``None`` without claiming work.

        Safe for any number of concurrent worker threads: the queue
        view is re-derived under the lock after every wait, and removal
        is atomic with the due decision.
        """
        with self._cond:
            while True:
                if stop is not None and stop():
                    return None
                if not self._items:
                    if self._closed:
                        return None
                    self._cond.wait()
                    continue
                cfg = self._config
                now_t = self._now()
                if cfg.scheduling == "fifo":
                    tenant = self._items[0].tenant
                else:
                    tenant = self._select_tenant(
                        cfg, max_batch, batch_timeout_s,
                        service_estimate, now_t,
                    )
                if tenant is None:
                    # nothing due: sleep until the earliest head could
                    # become due (puts/closes/config swaps notify)
                    wake_at = min(
                        self._flush_at(
                            head, batch_timeout_s, service_estimate
                        )
                        for head in self._heads().values()
                    )
                    self._cond.wait(max(0.0, wake_at - now_t))
                    continue
                head = next(
                    t for t in self._items if t.tenant == tenant
                )
                count = sum(
                    1 for t in self._items if t.tenant == tenant
                )
                due = (
                    count >= max_batch
                    or self._closed
                    or now_t
                    >= self._flush_at(
                        head, batch_timeout_s, service_estimate
                    )
                )
                if not due:
                    # fifo mode: the head tenant alone defines the batch
                    self._cond.wait(
                        max(
                            0.0,
                            self._flush_at(
                                head, batch_timeout_s, service_estimate
                            )
                            - now_t,
                        )
                    )
                    continue
                batch = [
                    t for t in self._items if t.tenant == tenant
                ][:max_batch]
                for t in batch:
                    self._items.remove(t)
                policy = cfg.policy(tenant)
                self._pass[tenant] = self._pass.get(
                    tenant, 0.0
                ) + len(batch) / policy.weight
                return batch

    def _heads(self) -> dict[str, Ticket]:
        """Oldest queued ticket per tenant, in arrival order."""
        heads: dict[str, Ticket] = {}
        for t in self._items:
            if t.tenant not in heads:
                heads[t.tenant] = t
        return heads

    @staticmethod
    def _flush_at(
        head: Ticket,
        batch_timeout_s: float,
        service_estimate: Callable[[str], float | None],
    ) -> float:
        """When ``head``'s tenant becomes due regardless of batch size."""
        flush_at = head.enqueue_t + batch_timeout_s
        est = service_estimate(head.tenant)
        if est is not None:
            # dispatch early enough that service can still finish
            # inside the oldest request's deadline
            flush_at = min(flush_at, head.deadline_t - est)
        return flush_at

    def _select_tenant(
        self,
        cfg: FleetConfig,
        max_batch: int,
        batch_timeout_s: float,
        service_estimate: Callable[[str], float | None],
        now_t: float,
    ) -> str | None:
        """The due tenant to serve next, or ``None`` if nothing is due.

        Highest priority class first; inside the class, the smallest
        weighted stride pass; ties broken by arrival order.  Fullness
        (``count >= max_batch``) makes a tenant due immediately — a
        full batch gains nothing by waiting.
        """
        heads = self._heads()
        counts: dict[str, int] = {}
        for t in self._items:
            counts[t.tenant] = counts.get(t.tenant, 0) + 1
        due = [
            tenant
            for tenant, head in heads.items()
            if self._closed
            or counts[tenant] >= max_batch
            or now_t
            >= self._flush_at(head, batch_timeout_s, service_estimate)
        ]
        if not due:
            return None
        return min(
            due,
            key=lambda tenant: (
                -cfg.policy(tenant).priority,
                self._pass.get(tenant, 0.0),
                heads[tenant].request_seq,
            ),
        )
