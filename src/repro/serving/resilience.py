"""Failure-recovery policy for the dispatcher fleet.

Two mechanisms, both *invisible to outputs* because every execution
backend in this repo is bit-exact by construction:

* :class:`CircuitBreaker` — per-(tenant, backend) failure tracking.
  After ``breaker_threshold`` consecutive failures on a tenant's
  primary backend the breaker **opens**: subsequent batches run on the
  next backend down :data:`DEGRADE_CHAIN` (``"turbo"`` → ``"batched"``
  → ``"fast"``), trading BLAS-rate arithmetic for whatever still works.
  After ``breaker_cooldown_s`` one batch **probes** the primary; success
  closes the breaker, failure re-arms the cooldown.  Degrading changes
  wall clock, never bits — the whole point of keeping every backend
  exact is that recovery needs no output reconciliation.

* :func:`supervisor_loop` — the watchdog thread body.  It holds the
  dispatcher only weakly (the same discipline as the worker threads, so
  a dropped dispatcher can still be garbage collected) and periodically
  asks it to :meth:`~repro.serving.dispatcher.Dispatcher._supervise`:
  respawn dead worker threads within ``min_workers..max_workers`` and
  audit the crash in the control-plane trail.

Broken *process pools* are handled inline by the dispatch path (a dead
child surfaces as a result timeout / pipe error on the waiting worker,
which rebuilds the pool immediately) — the supervisor only needs to own
the failure mode nobody is waiting on: a worker thread that died.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Callable

from repro.serving.control import FleetConfig

__all__ = ["DEGRADE_CHAIN", "CircuitBreaker", "supervisor_loop"]

#: graceful-degradation order; backends absent from the map (``"fast"``,
#: ``"simulate"``, user backends) have nothing to degrade to and their
#: breakers stay inert
DEGRADE_CHAIN = {"turbo": "batched", "batched": "fast"}


class CircuitBreaker:
    """Consecutive-failure breaker for one (tenant, primary backend).

    Thread-safe; shared by every worker serving the tenant.  The life
    cycle is the classic three states collapsed to two booleans:

    * **closed** — batches run on the primary backend;
    * **open** — batches run on the fallback; once ``breaker_cooldown_s``
      has elapsed, exactly one in-flight batch is elected the **probe**
      and runs on the primary (other workers keep using the fallback
      until the probe reports back).

    ``plan_execution`` picks the backend for one batch attempt and
    ``record`` feeds the outcome back; state transitions are returned as
    ``"open"`` / ``"close"`` strings so the dispatcher can audit them.
    """

    def __init__(
        self,
        primary: str,
        config_fn: Callable[[], FleetConfig],
        *,
        now: Callable[[], float] = time.monotonic,
    ):
        self.primary = primary
        self.fallback = DEGRADE_CHAIN.get(primary)
        self._config_fn = config_fn
        self._now = now
        self._lock = threading.Lock()
        self._failures = 0
        self._open = False
        self._retry_at = 0.0
        self._probe_inflight = False

    @property
    def state(self) -> str:
        return "open" if self._open else "closed"

    @property
    def execution(self) -> str:
        """The backend a non-probe batch would use right now."""
        return self.fallback if self._open else self.primary

    def plan_execution(self) -> tuple[str, bool]:
        """``(backend for this batch, is_probe)`` — call once per attempt."""
        if self.fallback is None:
            return self.primary, False
        with self._lock:
            if not self._open:
                return self.primary, False
            if not self._probe_inflight and self._now() >= self._retry_at:
                self._probe_inflight = True
                return self.primary, True
            return self.fallback, False

    def record(self, ok: bool, *, probe: bool = False) -> str | None:
        """Feed one batch outcome back; returns a transition to audit.

        ``"open"`` — the breaker just opened (degradation begins);
        ``"close"`` — a probe succeeded (primary restored); ``None`` —
        no state change worth auditing.
        """
        if self.fallback is None:
            return None
        cfg = self._config_fn()
        with self._lock:
            if probe:
                self._probe_inflight = False
                if ok:
                    self._open = False
                    self._failures = 0
                    return "close"
                self._retry_at = self._now() + cfg.breaker_cooldown_s
                return None
            if ok:
                if not self._open:
                    self._failures = 0
                return None
            self._failures += 1
            if not self._open and self._failures >= cfg.breaker_threshold:
                self._open = True
                self._retry_at = self._now() + cfg.breaker_cooldown_s
                return "open"
            return None


def supervisor_loop(
    dispatcher_ref: "weakref.ref", stop: threading.Event
) -> None:
    """Watchdog thread body: periodically respawn dead worker threads.

    Holds the dispatcher only through ``dispatcher_ref`` and drops the
    strong reference before every sleep, so an abandoned dispatcher is
    still collectable (its finalizer sets ``stop``; the ``None`` deref
    is the backstop).  Sweep errors are swallowed — a supervisor that
    dies of its own bug would be an unsupervised single point of
    failure, the exact disease it exists to cure.
    """
    while not stop.is_set():
        dispatcher = dispatcher_ref()
        if dispatcher is None or dispatcher._closed:
            return
        interval = dispatcher.config.supervise_interval_s
        try:
            dispatcher._supervise()
        except Exception:
            pass
        del dispatcher
        stop.wait(interval)
