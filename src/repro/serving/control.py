"""Declarative control plane for the serving dispatcher.

The data plane (queue → batch former → worker shards → sessions) stays
bit-exact whatever happens; this module owns everything *operational*
about it, as one small declarative model instead of ad-hoc setters:

* :class:`TenantPolicy` — per-tenant QoS: scheduling ``weight``,
  ``priority`` class, default ``deadline_s``, admission ``quota``;
* :class:`FleetConfig` — the whole fleet: the tenant policy map plus
  batching, admission and autoscaling knobs and the ``min_workers`` /
  ``max_workers`` range;
* :class:`ControlPlane` — validated atomic swap of the live config with
  a subscriber protocol (:class:`ConfigSubscriber`) and an audit trail
  of :class:`ConfigChange` records, surfaced in ``Dispatcher.stats``;
* :class:`Autoscaler` — a pure decision function growing/shrinking the
  worker pool from queue depth and the per-tenant EWMA service
  estimates the queue already tracks.

The shape follows the config/state/action split of network-element
configuration daemons: consumers *subscribe* to config changes and
re-derive their behavior from the new declarative state, so a change to
tenant weights, priorities, quotas, deadlines or worker counts lands on
a **live** dispatcher — no restart, no torn intermediate state, every
change validated first and recorded in the audit trail.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Protocol, runtime_checkable

from repro.errors import ConfigError
from repro.serving.faults import stable_uniform

__all__ = [
    "TenantPolicy",
    "DEFAULT_POLICY",
    "RetryPolicy",
    "FleetConfig",
    "ConfigChange",
    "ConfigSubscriber",
    "ControlPlane",
    "Autoscaler",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-aware retry with exponential backoff + deterministic jitter.

    Governs the dispatcher's quarantine path: after a batch faults, each
    member request is re-run in isolation up to ``max_attempts`` times.
    Between attempts the worker sleeps :meth:`backoff` seconds —
    exponential in the attempt number, jittered by a *deterministic*
    hash draw (:func:`~repro.serving.faults.stable_uniform` over the
    request key), and always budgeted against the ticket's remaining
    deadline: a retry that could not finish in time is not attempted.

    ``max_attempts=1`` (the default) means one isolation run and no
    backoff sleeps — quarantine itself is not optional, only the extra
    attempts are.
    """

    #: total isolation attempts per quarantined request (>= 1)
    max_attempts: int = 1
    #: sleep before attempt 2 (seconds); doubles-by-``multiplier`` after
    backoff_s: float = 0.002
    #: exponential growth factor between attempts
    multiplier: float = 2.0
    #: jitter fraction: each sleep is scaled by ``1 ± jitter`` via a
    #: deterministic per-(key, attempt) draw
    jitter: float = 0.5

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"retry.max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ConfigError(
                f"retry.backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.multiplier < 1.0:
            raise ConfigError(
                f"retry.multiplier must be >= 1, got {self.multiplier}"
            )
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigError(
                f"retry.jitter must be in [0, 1], got {self.jitter}"
            )

    def backoff(self, attempt: int, key: int = 0) -> float:
        """Sleep before isolation attempt ``attempt`` (2-based).

        Deterministic: the jitter draw depends only on ``(key,
        attempt)``, so a chaos run's recovery timeline replays exactly.
        """
        if attempt <= 1 or self.backoff_s <= 0:
            return 0.0
        base = self.backoff_s * self.multiplier ** (attempt - 2)
        if self.jitter <= 0:
            return base
        u = stable_uniform(0, "retry.backoff", key, attempt)
        return base * (1.0 + self.jitter * (2.0 * u - 1.0))


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant quality-of-service policy.

    Attributes
    ----------
    weight:
        Scheduling weight among tenants of the same priority class; a
        weight-2 tenant receives ~2x the batch slots of a weight-1
        tenant under contention (stride scheduling in the batch former).
    priority:
        Priority class; higher classes are always scheduled before
        lower ones, and load shedding evicts the lowest class first.
    deadline_s:
        Default deadline for this tenant's requests when ``submit`` does
        not pass one (falls back to the fleet ``default_deadline_s``).
    quota:
        Admission quota: at most this many of the tenant's requests may
        be queued at once (``None`` = only the global depth bound).
    """

    weight: float = 1.0
    priority: int = 0
    deadline_s: float | None = None
    quota: int | None = None

    def validate(self, tenant: str) -> None:
        """Raise :class:`ConfigError` unless the policy is servable."""
        if not (self.weight > 0 and math.isfinite(self.weight)):
            raise ConfigError(
                f"tenant {tenant!r}: weight must be a positive finite "
                f"number, got {self.weight}"
            )
        if not isinstance(self.priority, int):
            raise ConfigError(
                f"tenant {tenant!r}: priority must be an int class, "
                f"got {self.priority!r}"
            )
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ConfigError(
                f"tenant {tenant!r}: deadline_s must be positive, "
                f"got {self.deadline_s}"
            )
        if self.quota is not None and self.quota <= 0:
            raise ConfigError(
                f"tenant {tenant!r}: quota must be positive (or None "
                f"for unbounded), got {self.quota}"
            )


#: the policy of any tenant the config does not name explicitly
DEFAULT_POLICY = TenantPolicy()

#: batch-former scheduling disciplines a config may select
SCHEDULING_MODES = ("weighted", "fifo")

#: autoscaler policies a config may select
AUTOSCALE_MODES = ("heuristic", "model")


@dataclass(frozen=True)
class FleetConfig:
    """Declarative configuration of one dispatcher fleet.

    Immutable: reconfiguration builds a new instance (:meth:`evolve`,
    :meth:`with_tenant`) and applies it atomically via
    ``Dispatcher.apply_config``.  Every consumer re-reads the current
    config on each decision, so a swap takes effect at the next batch
    boundary without touching in-flight work.
    """

    #: per-tenant QoS policies; unnamed tenants get :data:`DEFAULT_POLICY`
    tenants: Mapping[str, TenantPolicy] = field(default_factory=dict)
    #: autoscaler range (equal values pin the fleet size)
    min_workers: int = 1
    max_workers: int = 4
    #: micro-batch size cap / flush trigger
    max_batch: int = 8
    #: global admission-control bound on queued requests
    max_queue_depth: int = 256
    #: deadline for requests whose tenant policy sets none
    default_deadline_s: float = 0.5
    #: longest the batch former holds a head request for co-batching
    batch_timeout_s: float = 0.002
    #: batch former discipline: ``"weighted"`` (priority classes, then
    #: weighted stride among the class) or ``"fifo"`` (head-tenant
    #: arrival order, the pre-control-plane behavior)
    scheduling: str = "weighted"
    #: scale up when the per-worker backlog exceeds this many batches
    scale_up_backlog: float = 1.0
    #: scale down while backlog would fit this many batches per worker
    #: on one fewer worker
    scale_down_backlog: float = 0.25
    #: consecutive low-load observations required before shrinking
    scale_patience: int = 3
    #: minimum seconds between autoscaler resizes
    scale_cooldown_s: float = 0.05
    #: quarantine retry policy (isolation attempts, backoff, jitter)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: consecutive per-(tenant, backend) failures that open the circuit
    #: breaker and degrade the session's execution backend
    breaker_threshold: int = 4
    #: seconds an open breaker waits before probing the primary backend
    breaker_cooldown_s: float = 0.5
    #: supervisor sweep period (dead-worker detection and respawn)
    supervise_interval_s: float = 0.05
    #: how long the parent waits on one process-pool result before
    #: declaring the child dead and rebuilding the pool
    process_result_timeout_s: float = 120.0
    #: fleet-wide retry budget: retries beyond the mandatory quarantine
    #: isolation run may never exceed ``retry_budget_burst +
    #: retry_budget_ratio x admitted`` (0.0 = no budgeted retries)
    retry_budget_ratio: float = 0.1
    #: retry tokens available before any request has been admitted
    retry_budget_burst: int = 8
    #: autoscaler policy: ``"heuristic"`` (queue-depth/EWMA backlog) or
    #: ``"model"`` (M/G/k capacity planning from the measured arrival
    #: rate, falling back to the heuristic until calibrated)
    autoscale_mode: str = "heuristic"
    #: deadline-hit-rate target the model-driven autoscaler plans for
    autoscale_hit_rate: float = 0.99
    #: worker-target multiplier while any circuit breaker is open —
    #: degraded backends are slower, so plan headroom for the storm
    fault_headroom: float = 1.25

    def policy(self, tenant: str) -> TenantPolicy:
        """The tenant's policy (:data:`DEFAULT_POLICY` if unnamed)."""
        return self.tenants.get(tenant, DEFAULT_POLICY)

    def validate(self) -> None:
        """Raise :class:`ConfigError` on the first invalid field."""
        for tenant, policy in self.tenants.items():
            if not isinstance(policy, TenantPolicy):
                raise ConfigError(
                    f"tenant {tenant!r}: expected a TenantPolicy, "
                    f"got {type(policy).__name__}"
                )
            policy.validate(tenant)
        if self.min_workers <= 0:
            raise ConfigError(
                f"min_workers must be positive, got {self.min_workers}"
            )
        if self.max_workers < self.min_workers:
            raise ConfigError(
                f"max_workers ({self.max_workers}) must be >= "
                f"min_workers ({self.min_workers})"
            )
        if self.max_batch <= 0:
            raise ConfigError(
                f"max_batch must be positive, got {self.max_batch}"
            )
        if self.max_queue_depth <= 0:
            raise ConfigError(
                f"max_queue_depth must be positive, "
                f"got {self.max_queue_depth}"
            )
        if not self.default_deadline_s > 0:
            raise ConfigError(
                f"default_deadline_s must be positive, "
                f"got {self.default_deadline_s}"
            )
        if self.batch_timeout_s < 0:
            raise ConfigError(
                f"batch_timeout_s must be >= 0, got {self.batch_timeout_s}"
            )
        if self.scheduling not in SCHEDULING_MODES:
            raise ConfigError(
                f"unknown scheduling {self.scheduling!r}; "
                f"use one of {SCHEDULING_MODES}"
            )
        if self.scale_up_backlog <= 0 or self.scale_down_backlog < 0:
            raise ConfigError(
                "scale_up_backlog must be > 0 and scale_down_backlog >= 0"
            )
        if self.scale_patience <= 0 or self.scale_cooldown_s < 0:
            raise ConfigError(
                "scale_patience must be > 0 and scale_cooldown_s >= 0"
            )
        if not isinstance(self.retry, RetryPolicy):
            raise ConfigError(
                f"retry must be a RetryPolicy, "
                f"got {type(self.retry).__name__}"
            )
        self.retry.validate()
        if self.breaker_threshold <= 0:
            raise ConfigError(
                f"breaker_threshold must be positive, "
                f"got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_s < 0:
            raise ConfigError(
                f"breaker_cooldown_s must be >= 0, "
                f"got {self.breaker_cooldown_s}"
            )
        if not self.supervise_interval_s > 0:
            raise ConfigError(
                f"supervise_interval_s must be positive, "
                f"got {self.supervise_interval_s}"
            )
        if not self.process_result_timeout_s > 0:
            raise ConfigError(
                f"process_result_timeout_s must be positive, "
                f"got {self.process_result_timeout_s}"
            )
        if not (0.0 <= self.retry_budget_ratio <= 1.0):
            raise ConfigError(
                f"retry_budget_ratio must be in [0, 1], "
                f"got {self.retry_budget_ratio}"
            )
        if self.retry_budget_burst < 0:
            raise ConfigError(
                f"retry_budget_burst must be >= 0, "
                f"got {self.retry_budget_burst}"
            )
        if self.autoscale_mode not in AUTOSCALE_MODES:
            raise ConfigError(
                f"unknown autoscale_mode {self.autoscale_mode!r}; "
                f"use one of {AUTOSCALE_MODES}"
            )
        if not (0.0 < self.autoscale_hit_rate <= 1.0):
            raise ConfigError(
                f"autoscale_hit_rate must be in (0, 1], "
                f"got {self.autoscale_hit_rate}"
            )
        if self.fault_headroom < 1.0:
            raise ConfigError(
                f"fault_headroom must be >= 1, got {self.fault_headroom}"
            )

    # -- functional update helpers -------------------------------------- #
    def evolve(self, **changes) -> "FleetConfig":
        """A copy with ``changes`` applied (the config stays immutable)."""
        return replace(self, **changes)

    def with_tenant(self, tenant: str, **policy_changes) -> "FleetConfig":
        """A copy with one tenant's policy fields updated."""
        tenants = dict(self.tenants)
        tenants[tenant] = replace(self.policy(tenant), **policy_changes)
        return replace(self, tenants=tenants)

    def diff(self, old: "FleetConfig | None") -> tuple[str, ...]:
        """Human-readable field-level differences vs ``old``."""
        if old is None:
            return (f"initial config: {self.summary()}",)
        lines: list[str] = []
        for name in (
            "min_workers", "max_workers", "max_batch", "max_queue_depth",
            "default_deadline_s", "batch_timeout_s", "scheduling",
            "scale_up_backlog", "scale_down_backlog", "scale_patience",
            "scale_cooldown_s", "retry", "retry_budget_ratio",
            "retry_budget_burst", "autoscale_mode", "autoscale_hit_rate",
            "fault_headroom", "breaker_threshold",
            "breaker_cooldown_s", "supervise_interval_s",
            "process_result_timeout_s",
        ):
            a, b = getattr(old, name), getattr(self, name)
            if a != b:
                lines.append(f"{name}: {a} -> {b}")
        for tenant in sorted(set(old.tenants) | set(self.tenants)):
            a, b = old.policy(tenant), self.policy(tenant)
            if a != b:
                lines.append(f"tenant {tenant!r}: {a} -> {b}")
        return tuple(lines) if lines else ("no changes",)

    def summary(self) -> str:
        """One-line description for audit records."""
        return (
            f"workers {self.min_workers}..{self.max_workers}, "
            f"max_batch {self.max_batch}, depth {self.max_queue_depth}, "
            f"scheduling {self.scheduling!r}, "
            f"{len(self.tenants)} tenant polic"
            f"{'y' if len(self.tenants) == 1 else 'ies'}"
        )


@dataclass(frozen=True)
class ConfigChange:
    """One audit-trail entry: a config swap or a fleet resize."""

    #: config epoch after this change (0 = construction)
    epoch: int
    #: monotonic-clock instant the change was applied
    at_s: float
    #: ``"config"`` (apply_config), ``"scale"`` (resize) or ``"init"``
    kind: str
    #: human-readable what-changed lines
    summary: tuple[str, ...]


@runtime_checkable
class ConfigSubscriber(Protocol):
    """Anything that re-derives behavior from the declarative config."""

    def apply_config(
        self, old: FleetConfig | None, new: FleetConfig
    ) -> None:
        """Adopt ``new``; must not fail (configs are pre-validated)."""
        ...  # pragma: no cover — protocol


class ControlPlane:
    """Validated, atomic, audited ownership of the live config.

    ``apply`` validates the candidate config *before* touching anything,
    then swaps it and notifies every subscriber in subscription order
    under one lock — a reader never observes half a reconfiguration.
    The bounded audit trail records every swap (and, via
    :meth:`record`, every autoscaler action) for ``stats``.
    """

    def __init__(
        self,
        config: FleetConfig,
        *,
        now: Callable[[], float] = time.monotonic,
        audit_limit: int = 256,
    ):
        config.validate()
        self._now = now
        self._lock = threading.Lock()
        self._subscribers: list[ConfigSubscriber] = []
        self._config = config
        self._epoch = 0
        self._audit: deque[ConfigChange] = deque(maxlen=audit_limit)
        self._audit.append(
            ConfigChange(
                epoch=0, at_s=now(), kind="init",
                summary=config.diff(None),
            )
        )

    @property
    def config(self) -> FleetConfig:
        """The live config (an immutable snapshot; reads need no lock)."""
        return self._config

    @property
    def epoch(self) -> int:
        """How many reconfigurations have been applied."""
        return self._epoch

    def subscribe(self, subscriber: ConfigSubscriber) -> None:
        """Register for future swaps and replay the current config."""
        with self._lock:
            self._subscribers.append(subscriber)
            subscriber.apply_config(None, self._config)

    def apply(self, new: FleetConfig) -> ConfigChange:
        """Validate, atomically swap, notify subscribers, audit.

        A :class:`ConfigError` leaves the previous config fully in
        force.  Applying an identical config is a recorded no-op (the
        epoch still advances, so callers can fence on it).
        """
        if not isinstance(new, FleetConfig):
            raise ConfigError(
                f"apply_config expects a FleetConfig, "
                f"got {type(new).__name__}"
            )
        new.validate()
        with self._lock:
            old = self._config
            self._config = new
            for subscriber in self._subscribers:
                subscriber.apply_config(old, new)
            self._epoch += 1
            change = ConfigChange(
                epoch=self._epoch, at_s=self._now(), kind="config",
                summary=new.diff(old),
            )
            self._audit.append(change)
            return change

    def record(self, kind: str, *summary: str) -> ConfigChange:
        """Append a non-config audit event (e.g. an autoscaler resize)."""
        with self._lock:
            change = ConfigChange(
                epoch=self._epoch, at_s=self._now(), kind=kind,
                summary=tuple(summary),
            )
            self._audit.append(change)
            return change

    def audit(self) -> tuple[ConfigChange, ...]:
        """The audit trail, oldest first (bounded to ``audit_limit``)."""
        with self._lock:
            return tuple(self._audit)


class Autoscaler:
    """Worker-count decisions from queue depth and service estimates.

    Stateless about the fleet itself — the dispatcher feeds every
    observation in and applies the returned target — so the policy is
    unit-testable with synthetic load and injected clocks.  Two signals:

    * **backlog**: queued batches per worker
      (``queue_depth / max_batch / workers``); above
      ``scale_up_backlog`` the fleet grows toward the depth that would
      bring it back under the threshold;
    * **drain time**: with a per-tenant EWMA service estimate available,
      the projected time to drain the backlog
      (``batches * service_s / workers``); if it exceeds half the
      default deadline, enough workers are requested to drain within
      that budget — capacity planning, not just thresholding.

    Shrinking needs ``scale_patience`` consecutive low-load
    observations, and every resize respects ``scale_cooldown_s``; both
    guard against thrash on bursty arrivals.  The ``min_workers`` /
    ``max_workers`` clamp is enforced immediately, cooldown or not,
    because it is a hard config bound rather than a load decision.
    """

    def __init__(self, config: FleetConfig | None = None):
        self._config = config if config is not None else FleetConfig()
        # decide() is called from every submitter and worker thread;
        # the streak/cooldown bookkeeping must not be torn between them
        self._lock = threading.Lock()
        self._cool_until = 0.0
        self._low_streak = 0

    # -- ConfigSubscriber ----------------------------------------------- #
    def apply_config(
        self, old: FleetConfig | None, new: FleetConfig
    ) -> None:
        with self._lock:
            self._config = new
            self._low_streak = 0

    # -- decisions ------------------------------------------------------ #
    def desired_workers(
        self, *, queue_depth: int, service_s: float | None
    ) -> int:
        """Ideal fleet size for the observed load (before hysteresis)."""
        cfg = self._config
        backlog_batches = queue_depth / max(1, cfg.max_batch)
        if service_s is not None and service_s > 0:
            # drain the backlog within half the default deadline budget
            budget_s = 0.5 * cfg.default_deadline_s
            need = backlog_batches * service_s / max(budget_s, 1e-9)
        else:
            need = backlog_batches / cfg.scale_up_backlog
        return max(cfg.min_workers, min(cfg.max_workers, math.ceil(need)))

    def decide(
        self,
        *,
        queue_depth: int,
        workers: int,
        service_s: float | None,
        now: float,
    ) -> int | None:
        """New worker target, or ``None`` to leave the fleet alone.

        Serialized internally: concurrent observers (every submit and
        batch completion calls in) would otherwise tear the shrink
        streak and let two callers both pass the cooldown check.
        """
        with self._lock:
            cfg = self._config
            if workers < cfg.min_workers:
                return cfg.min_workers
            if workers > cfg.max_workers:
                return cfg.max_workers
            desired = self.desired_workers(
                queue_depth=queue_depth, service_s=service_s
            )
            if desired > workers:
                self._low_streak = 0
                if now < self._cool_until:
                    return None
                self._cool_until = now + cfg.scale_cooldown_s
                return desired
            backlog_batches = queue_depth / max(1, cfg.max_batch)
            fits_smaller = (
                workers > cfg.min_workers
                and backlog_batches
                <= cfg.scale_down_backlog * max(1, workers - 1)
            )
            if not fits_smaller:
                self._low_streak = 0
                return None
            self._low_streak += 1
            if (
                self._low_streak < cfg.scale_patience
                or now < self._cool_until
            ):
                return None
            self._low_streak = 0
            self._cool_until = now + cfg.scale_cooldown_s
            return workers - 1

    def decide_target(
        self, *, target: int, workers: int, now: float
    ) -> int | None:
        """Steer toward an externally planned worker target.

        The model-driven path: the dispatcher plans capacity from the
        measured arrival rate (:func:`repro.fleet.planner.plan_capacity`
        plus fault headroom) and hands the answer here, which applies
        the *same* clamp / cooldown / shrink-patience discipline as the
        heuristic — model and heuristic modes share one hysteresis, so
        switching modes live never double-fires a resize.  Growth jumps
        straight to the planned target (a storm wants capacity now);
        shrinking steps down one worker per patience streak.
        """
        with self._lock:
            cfg = self._config
            if workers < cfg.min_workers:
                return cfg.min_workers
            if workers > cfg.max_workers:
                return cfg.max_workers
            target = max(cfg.min_workers, min(cfg.max_workers, target))
            if target > workers:
                self._low_streak = 0
                if now < self._cool_until:
                    return None
                self._cool_until = now + cfg.scale_cooldown_s
                return target
            if target == workers:
                self._low_streak = 0
                return None
            self._low_streak += 1
            if (
                self._low_streak < cfg.scale_patience
                or now < self._cool_until
            ):
                return None
            self._low_streak = 0
            self._cool_until = now + cfg.scale_cooldown_s
            return workers - 1
