"""Plan-once/run-many serving layer on top of the compiler.

Three tiers.  A :class:`Session` is the single-caller path — compile a
model once, then serve batches against the frozen plans, packed weights
and per-stage cost templates:

    import repro
    session = repro.compile(model, execution="fast").serve()
    results = session.run_batch(batch_of_inputs)   # bit-exact vs simulate
    results[0].stats.report.latency_ms             # modeled per-request cost

A :class:`Dispatcher` is the fleet path — an admission-controlled queue
that forms deadline-aware micro-batches and shards them across N
workers, serving many tenants' models through one shared ``PlanCache``:

    from repro.serving import Dispatcher
    with Dispatcher({"acme": cm_a, "globex": cm_b}, workers=4) as d:
        ticket = d.submit(x, tenant="acme", deadline_s=0.05)
        print(ticket.result().latency_s, d.stats.p95_latency_s)

The **control plane** makes the fleet declarative and live-tunable: a
:class:`FleetConfig` carries per-tenant QoS policies (scheduling weight,
priority class, deadline default, admission quota) and fleet bounds
(``min_workers``/``max_workers``, batching, queue depth), the batch
former schedules by priority class and weighted stride, overload sheds
the lowest-priority work first, and an :class:`Autoscaler` moves the
worker pool inside the configured range.  Reconfigure without a restart:

    cfg = d.config.with_tenant("acme", weight=4.0, priority=1)
    d.apply_config(cfg)          # validated, atomic, audited in d.stats

The **resilience layer** keeps the fleet honest under failure: a
seedable :class:`FaultPlan` injects reproducible faults at named points
(:mod:`repro.serving.faults`), the dispatcher quarantines poison
requests so innocent co-batched tickets still succeed, a supervisor
respawns crashed workers and rebuilds broken process pools, and a
per-(tenant, backend) :class:`CircuitBreaker` degrades a failing
``"turbo"`` session to ``"batched"``/``"fast"`` — bit-exact by
construction, so degradation is invisible to outputs — then probes its
way back after cooldown.  Every crash, restart and degradation is an
audited event in the control plane's trail.

Outputs and per-request cost reports stay bit-identical to
``execution="simulate"`` under any interleaving — batching, sharding,
tenant mixing, live reconfiguration and failure recovery change wall
clock, never bits.
"""

from repro.serving.budgets import (
    AvailabilityReport,
    ErrorBudget,
    RetryBudget,
    availability_report,
    repair_metrics,
)
from repro.serving.control import (
    Autoscaler,
    ConfigChange,
    ControlPlane,
    FleetConfig,
    RetryPolicy,
    TenantPolicy,
)
from repro.serving.faults import FaultInjector, FaultPlan, FaultSpec
from repro.serving.resilience import CircuitBreaker
from repro.serving.dispatcher import (
    Dispatcher,
    DispatchResult,
    DispatchStats,
    TenantStats,
)
from repro.serving.queue import RequestQueue, Ticket
from repro.serving.session import (
    RequestResult,
    RequestStats,
    Session,
    SessionStats,
)

__all__ = [
    "Autoscaler",
    "AvailabilityReport",
    "CircuitBreaker",
    "ConfigChange",
    "ControlPlane",
    "ErrorBudget",
    "RetryBudget",
    "availability_report",
    "repair_metrics",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FleetConfig",
    "RetryPolicy",
    "TenantPolicy",
    "Dispatcher",
    "DispatchResult",
    "DispatchStats",
    "TenantStats",
    "RequestQueue",
    "Ticket",
    "RequestResult",
    "RequestStats",
    "Session",
    "SessionStats",
]
