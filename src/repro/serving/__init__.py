"""Plan-once/run-many serving layer on top of the compiler.

Compile a model once, then serve many requests against the frozen plans,
packed weights and per-stage cost templates:

    import repro
    session = repro.compile(model, execution="fast").serve()
    results = session.run_batch(batch_of_inputs)   # bit-exact vs simulate
    results[0].stats.report.latency_ms             # modeled per-request cost

See :class:`repro.serving.Session` and the ``"batched"`` execution backend
(:mod:`repro.kernels.batched`) it dispatches to by default.
"""

from repro.serving.session import (
    RequestResult,
    RequestStats,
    Session,
    SessionStats,
)

__all__ = ["RequestResult", "RequestStats", "Session", "SessionStats"]
