"""Plan-once/run-many serving layer on top of the compiler.

Two tiers.  A :class:`Session` is the single-caller path — compile a
model once, then serve batches against the frozen plans, packed weights
and per-stage cost templates:

    import repro
    session = repro.compile(model, execution="fast").serve()
    results = session.run_batch(batch_of_inputs)   # bit-exact vs simulate
    results[0].stats.report.latency_ms             # modeled per-request cost

A :class:`Dispatcher` is the fleet path — an admission-controlled queue
that forms deadline-aware micro-batches and shards them across N
workers, serving many tenants' models through one shared ``PlanCache``:

    from repro.serving import Dispatcher
    with Dispatcher({"acme": cm_a, "globex": cm_b}, workers=4) as d:
        ticket = d.submit(x, tenant="acme", deadline_s=0.05)
        print(ticket.result().latency_s, d.stats.p95_latency_s)

Outputs and per-request cost reports stay bit-identical to
``execution="simulate"`` under any interleaving — batching, sharding and
tenant mixing change wall clock, never bits.
"""

from repro.serving.dispatcher import (
    Dispatcher,
    DispatchResult,
    DispatchStats,
    TenantStats,
)
from repro.serving.queue import RequestQueue, Ticket
from repro.serving.session import (
    RequestResult,
    RequestStats,
    Session,
    SessionStats,
)

__all__ = [
    "Dispatcher",
    "DispatchResult",
    "DispatchStats",
    "TenantStats",
    "RequestQueue",
    "Ticket",
    "RequestResult",
    "RequestStats",
    "Session",
    "SessionStats",
]
