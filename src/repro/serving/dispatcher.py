"""Sharded multi-worker serving dispatcher with a live control plane.

The scale-out layer above :class:`~repro.serving.session.Session`:

.. code-block:: text

                      FleetConfig ──► ControlPlane ──► subscribers
                                          │   (queue, autoscaler)
                                          ▼ apply_config / audit
    submit() ──► RequestQueue ──► batch former ──► worker shards ──► Session
                 (admission +     (priority/QoS     (min..max        (one per
                  load shedding)   micro-batches)    threads)         tenant)

* the **control plane** (:mod:`repro.serving.control`) is a declarative
  :class:`FleetConfig` — per-tenant QoS weights, priority classes,
  deadline defaults and admission quotas, plus fleet-level batching and
  ``min_workers``/``max_workers`` bounds — applied atomically to a
  *live* dispatcher via :meth:`Dispatcher.apply_config`, every change
  validated first and recorded in the audit trail ``stats`` surfaces;
* the **queue** (:mod:`repro.serving.queue`) admits requests up to the
  global and per-tenant bounds, sheds the lowest-priority work first
  when full, and forms single-tenant micro-batches under a
  priority/weighted-stride/deadline policy;
* the **autoscaler** grows and shrinks the worker pool inside the
  config's range from queue depth and the per-tenant EWMA service
  estimates, with hysteresis; resizes land in the audit trail;
* **workers** pop batches and dispatch them through the tenant's warmed
  :class:`Session`.  Thread workers are the default — the stacked-GEMM
  hot path releases the GIL inside NumPy/BLAS, so threads shard real
  work on multicore hosts while sharing every cache.
  ``workers="process"`` forks one worker pool instead and falls back to
  per-request dispatch (sessions are inherited copy-on-write; children
  return raw outputs and the parent re-attaches the shared cost
  template).  The fork pool keeps its initial size; autoscaling moves
  only the thread shards in front of it;
* **tenants** are independent compiled models behind one front door.
  All of them share the process-wide (or caller-supplied)
  :class:`~repro.compiler.cache.PlanCache` — see
  :meth:`Dispatcher.compile` — plus the weight-pack cache and the
  per-plan cost-template cache, all lock-protected.

Correctness is load-bearing: whatever the arrival order, batch
composition, tenant mix or reconfiguration interleaving, every served
request's outputs and ``RequestStats``/``CostReport`` are bit-identical
to running it alone with ``execution="simulate"`` (property-tested in
``tests/serving/test_dispatcher.py`` and
``tests/serving/test_control.py``).  Scheduling and scaling change wall
clock and *which* requests are shed under overload — never bits.
"""

from __future__ import annotations

import math
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.compiler.cache import DEFAULT_PLAN_CACHE, CacheStats, PlanCache
from repro.errors import ConfigError, ServingError
from repro.serving.control import (
    Autoscaler,
    ConfigChange,
    ControlPlane,
    FleetConfig,
)
from repro.serving.queue import RequestQueue, Ticket
from repro.serving.session import RequestResult, Session

__all__ = ["DispatchResult", "TenantStats", "DispatchStats", "Dispatcher"]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(q * len(sorted_values)) - 1
    return sorted_values[max(0, min(len(sorted_values) - 1, rank))]


@dataclass(frozen=True)
class DispatchResult:
    """One served request plus its dispatch-level accounting."""

    #: the session-level result (outputs + modeled cost, bit-exact)
    result: RequestResult
    tenant: str
    #: which worker shard executed the batch
    worker: int
    #: seconds spent queued before the batch was formed
    queue_wait_s: float
    #: submit-to-completion seconds (queue wait + batch service)
    latency_s: float
    #: whether completion beat the request's deadline
    deadline_met: bool

    @property
    def output(self) -> np.ndarray:
        return self.result.output

    @property
    def stats(self):
        return self.result.stats


@dataclass
class TenantStats:
    """Per-tenant aggregate counters (a snapshot, not live state).

    ``latencies_s`` (and the percentiles over it) cover the most recent
    :data:`LATENCY_WINDOW` requests; the scalar counters are lifetime.
    """

    requests: int = 0
    batches: int = 0
    deadline_hits: int = 0
    deadline_misses: int = 0
    latencies_s: tuple[float, ...] = ()

    @property
    def deadline_hit_rate(self) -> float:
        total = self.deadline_hits + self.deadline_misses
        return self.deadline_hits / total if total else 0.0

    @property
    def p50_latency_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.50)

    @property
    def p95_latency_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.95)


@dataclass
class DispatchStats:
    """Dispatcher-lifetime snapshot: counters, percentiles, cache stats."""

    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    peak_queue_depth: int = 0
    #: first-submit to last-completion span (0 until something completes)
    wall_s: float = 0.0
    per_tenant: dict[str, TenantStats] = field(default_factory=dict)
    plan_cache: CacheStats | None = None
    #: admitted requests later evicted by priority load shedding
    shed: int = 0
    #: current worker-shard target (autoscaler/config controlled)
    workers: int = 0
    #: how many reconfigurations ``apply_config`` has applied
    config_epoch: int = 0
    #: the control plane's audit trail, oldest first
    audit: tuple[ConfigChange, ...] = ()

    @property
    def requests_per_s(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def deadline_hit_rate(self) -> float:
        hits = sum(t.deadline_hits for t in self.per_tenant.values())
        total = hits + sum(
            t.deadline_misses for t in self.per_tenant.values()
        )
        return hits / total if total else 0.0

    @property
    def _all_latencies(self) -> list[float]:
        out: list[float] = []
        for t in self.per_tenant.values():
            out.extend(t.latencies_s)
        out.sort()
        return out

    @property
    def p50_latency_s(self) -> float:
        return _percentile(self._all_latencies, 0.50)

    @property
    def p95_latency_s(self) -> float:
        return _percentile(self._all_latencies, 0.95)


# --------------------------------------------------------------------------- #
# process-mode plumbing
# --------------------------------------------------------------------------- #
#: dispatcher-id -> tenant sessions; populated in the parent *before* the
#: worker pool forks, so children inherit warmed sessions copy-on-write
#: and the IPC payload stays (feeds in, outputs out) — no model pickling.
_PROCESS_SESSIONS: dict[int, Mapping[str, Session]] = {}

#: how many recent per-request latencies each tenant's percentile window
#: keeps; a fleet running for days must not grow stats without bound
LATENCY_WINDOW = 4096

#: bound on one process-pool request round-trip; a dead pool child never
#: completes its ApplyResult, so an unbounded get() would hang a worker
PROCESS_RESULT_TIMEOUT_S = 120.0

#: floor on the per-tenant Session batch cap.  Sessions are built with
#: ``max(SESSION_BATCH_CAP, construction max_batch)`` so apply_config can
#: raise the fleet's ``max_batch`` live without forming batches the
#: sessions would reject; configs above the cap are rejected up front.
SESSION_BATCH_CAP = 256


def _process_serve(registry_key: int, tenant: str, feeds):
    """Child-side entry: run one request, return only the output tensors."""
    session = _PROCESS_SESSIONS[registry_key][tenant]
    return session.run_batch([feeds])[0].outputs


def _finalize_dispatcher(registry_key, pool, queue, frozen_weights) -> None:
    """Tear down everything a dropped dispatcher would otherwise leak.

    Registered as a ``weakref.finalize`` (and invoked by ``close()``):
    closes the queue so blocked workers drain and exit, drops the fork
    registry entry, kills the pool, and re-thaws weights frozen at fork.
    Runs for abandoned dispatchers because the worker threads hold only
    a *weak* reference back to the dispatcher (see ``_worker_entry``) —
    a bound-method thread target would pin it alive forever.
    """
    queue.close()
    _PROCESS_SESSIONS.pop(registry_key, None)
    if pool is not None:
        pool.terminate()
        pool.join()
    for w in frozen_weights:
        w.setflags(write=True)


def _worker_entry(
    dispatcher_ref: "weakref.ref", worker_id: int, retire_ids: set[int]
) -> None:
    """Worker thread body, holding the dispatcher only weakly.

    Strong references are re-taken per batch and dropped before the
    blocking ``pop_batch`` wait, so an abandoned dispatcher can be
    garbage collected — its finalizer then closes the queue, which
    wakes the workers and lets them exit.  ``retire_ids`` is the
    autoscaler's shrink signal: a worker that finds its id there exits
    at the next scheduling point without claiming work (the set is
    shared state, deliberately not a dispatcher reference).
    """
    while True:
        if worker_id in retire_ids:
            retire_ids.discard(worker_id)
            return
        dispatcher = dispatcher_ref()
        if dispatcher is None:
            return
        queue = dispatcher.queue
        max_batch = dispatcher.max_batch
        batch_timeout_s = dispatcher.batch_timeout_s
        # the dict's bound .get keeps the dict alive, not the dispatcher
        estimate = dispatcher._service_s.get
        del dispatcher
        batch = queue.pop_batch(
            max_batch,
            batch_timeout_s,
            estimate,
            stop=lambda: worker_id in retire_ids,
        )
        if batch is None:
            retire_ids.discard(worker_id)
            return
        dispatcher = dispatcher_ref()
        if dispatcher is None:
            error = ServingError(
                "dispatcher was dropped while this batch was queued; "
                "keep the dispatcher alive (or use `with`) until every "
                "ticket has resolved"
            )
            for ticket in batch:
                ticket._fail(error)
            return
        dispatcher._serve_batch(worker_id, batch)
        del dispatcher


class Dispatcher:
    """Queue → QoS micro-batches → worker shards → sessions, live-tunable.

    Parameters
    ----------
    models:
        ``{tenant name: CompiledModel}`` (or a single ``CompiledModel``,
        served as tenant ``"default"``).
    workers:
        Initial number of worker shards (clamped into the config's
        ``min_workers..max_workers`` range; the autoscaler moves the
        fleet inside it afterwards).
    worker_mode:
        ``"thread"`` (default; shards share every cache and the GEMMs
        release the GIL) or ``"process"`` (fork a pool; per-request
        dispatch inside each formed batch; the pool keeps its initial
        size).
    execution:
        Backend for every tenant session; the ``"turbo"`` default keeps
        bit-exactness while running the stacked GEMMs at BLAS rate.
    max_batch, max_queue_depth, default_deadline_s, batch_timeout_s:
        Shorthand for the matching :class:`FleetConfig` fields when no
        ``config`` is given.
    plan_cache:
        The shared :class:`PlanCache` whose hit/miss statistics the
        dispatcher reports (default: the process-wide cache every
        ``repro.compile`` call already goes through).
    config:
        Full declarative :class:`FleetConfig` (overrides the shorthand
        kwargs above).  Without one, a fixed-size config pinning
        ``min_workers = max_workers = workers`` reproduces the classic
        fixed-fleet behavior.  Swap it live with :meth:`apply_config`.
    """

    def __init__(
        self,
        models,
        *,
        workers: int = 4,
        worker_mode: str = "thread",
        execution: str = "turbo",
        max_batch: int = 8,
        max_queue_depth: int = 256,
        default_deadline_s: float = 0.5,
        batch_timeout_s: float = 0.002,
        plan_cache: PlanCache | None = None,
        config: FleetConfig | None = None,
    ):
        if workers <= 0:
            raise ServingError(f"need at least one worker, got {workers}")
        if worker_mode not in ("thread", "process"):
            raise ServingError(
                f"unknown worker_mode {worker_mode!r}; "
                "use 'thread' or 'process'"
            )
        if max_batch <= 0:
            raise ServingError(f"max_batch must be positive, got {max_batch}")
        if default_deadline_s <= 0 or batch_timeout_s < 0:
            raise ServingError(
                "default_deadline_s must be > 0 and batch_timeout_s >= 0"
            )
        if config is None:
            # classic fixed fleet: exactly `workers` shards, no scaling
            config = FleetConfig(
                min_workers=workers,
                max_workers=workers,
                max_batch=max_batch,
                max_queue_depth=max_queue_depth,
                default_deadline_s=default_deadline_s,
                batch_timeout_s=batch_timeout_s,
            )
        if not isinstance(models, Mapping):
            models = {"default": models}
        if not models:
            raise ServingError("dispatcher needs at least one tenant model")
        self.workers = workers
        self.worker_mode = worker_mode
        self.execution = execution
        self.plan_cache = (
            plan_cache if plan_cache is not None else DEFAULT_PLAN_CACHE
        )
        #: one warmed session per tenant; plans/packs/templates frozen here.
        #: The session batch cap is fixed at construction with headroom
        #: above the initial config so apply_config can raise ``max_batch``
        #: live — the batch former must never form a batch the sessions
        #: reject (that would fail every ticket in it).
        self._session_max_batch = max(
            SESSION_BATCH_CAP, max_batch, config.max_batch
        )
        self.sessions: dict[str, Session] = {
            tenant: Session(
                cm, execution=execution, max_batch=self._session_max_batch
            )
            for tenant, cm in models.items()
        }
        #: the control plane: validated atomic config swaps + audit trail
        self.control = ControlPlane(config)
        self.queue = RequestQueue(config=config)
        self._autoscaler = Autoscaler(config)
        self.control.subscribe(self.queue)
        self.control.subscribe(self._autoscaler)
        self._seq = 0
        self._admitted = 0
        self._submit_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._completed = 0
        self._failed = 0
        self._batches = 0
        self._first_submit_t: float | None = None
        self._last_done_t: float | None = None
        self._tenant_requests = {t: 0 for t in self.sessions}
        self._tenant_batches = {t: 0 for t in self.sessions}
        self._tenant_hits = {t: 0 for t in self.sessions}
        self._tenant_misses = {t: 0 for t in self.sessions}
        self._tenant_latencies: dict[str, deque[float]] = {
            t: deque(maxlen=LATENCY_WINDOW) for t in self.sessions
        }
        #: EWMA of per-batch service seconds, the deadline-flush estimate
        self._service_s: dict[str, float | None] = {
            t: None for t in self.sessions
        }
        self._closed = False

        self._pool = None
        self._frozen_weights: list[np.ndarray] = []
        if worker_mode == "process":
            self._pool = self._fork_pool()
        # unconditional cleanup for abandoned dispatchers (any mode):
        # closes the queue (waking and retiring the workers), drops the
        # fork registry entry, kills the pool, re-thaws frozen weights
        self._finalizer = weakref.finalize(
            self, _finalize_dispatcher, id(self), self._pool, self.queue,
            self._frozen_weights,
        )
        # worker-shard fleet: id -> thread, resized live by the
        # autoscaler / apply_config; `_retire_ids` is the shrink signal
        # shared with the workers (never a dispatcher reference)
        self._scale_lock = threading.Lock()
        self._threads: dict[int, threading.Thread] = {}
        self._retire_ids: set[int] = set()
        self._next_worker_id = 0
        self._target_workers = min(
            max(workers, config.min_workers), config.max_workers
        )
        with self._scale_lock:
            self._spawn_workers(self._target_workers)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def compile(
        cls,
        graphs: Mapping[str, object],
        *,
        device=None,
        cache: PlanCache | None = None,
        seed: int = 0,
        **dispatcher_kwargs,
    ) -> "Dispatcher":
        """Compile every tenant graph through one shared plan cache.

        Tenants serving the same architecture (the fleet case: one model,
        many customers) hit the cache instead of re-solving the
        constraint systems; the resulting hit rate is visible in
        :attr:`stats`.
        """
        from repro.compiler.compile import compile_model
        from repro.mcu.device import STM32F411RE

        cache = cache if cache is not None else PlanCache()
        device = device if device is not None else STM32F411RE
        compiled = {
            tenant: compile_model(g, device=device, cache=cache, seed=seed)
            for tenant, g in graphs.items()
        }
        return cls(compiled, plan_cache=cache, **dispatcher_kwargs)

    def _fork_pool(self):
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:
            raise ServingError(
                "workers='process' needs fork() (POSIX); "
                "use worker_mode='thread' on this platform"
            ) from None
        # children must inherit the sessions: register before forking.
        # fork() copying a mutex held by *another* thread would deadlock
        # the children; the at-fork handlers in repro.kernels.base fork
        # at a quiescent point for every serving-path lock.
        _PROCESS_SESSIONS[id(self)] = self.sessions
        # children serve the weights as forked, so in-place mutation in
        # the parent can never reach them: freeze the arrays for the
        # dispatcher's lifetime so a mutation raises at the write site
        # instead of silently serving the pre-fork snapshot (thread
        # workers re-pack mutated weights automatically and stay thawed)
        from repro.runtime.pipeline import stage_weight_arrays

        for session in self.sessions.values():
            for seg in session.compiled.segments:
                for stage in seg.pipeline.stages:
                    for w in stage_weight_arrays(stage):
                        if w.flags.writeable:
                            w.setflags(write=False)
                            self._frozen_weights.append(w)
        try:
            return ctx.Pool(processes=self.workers)
        except BaseException:
            _PROCESS_SESSIONS.pop(id(self), None)
            for w in self._frozen_weights:
                w.setflags(write=True)
            raise

    # ------------------------------------------------------------------ #
    # control plane
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> FleetConfig:
        """The live declarative config (an immutable snapshot)."""
        return self.control.config

    @property
    def max_batch(self) -> int:
        return self.control.config.max_batch

    @property
    def batch_timeout_s(self) -> float:
        return self.control.config.batch_timeout_s

    @property
    def default_deadline_s(self) -> float:
        return self.control.config.default_deadline_s

    @property
    def worker_count(self) -> int:
        """The current worker-shard target (live threads converge to it)."""
        return self._target_workers

    @property
    def live_workers(self) -> int:
        """Worker threads currently alive (lags the target briefly)."""
        with self._scale_lock:
            return sum(
                1
                for wid, th in self._threads.items()
                if th.is_alive() and wid not in self._retire_ids
            )

    def apply_config(self, new_config: FleetConfig) -> ConfigChange:
        """Reconfigure the **live** dispatcher; returns the audit record.

        Validated first (:class:`~repro.errors.ConfigError` leaves
        everything untouched), then swapped atomically: the queue's
        batch former, admission control and load shedding, the
        autoscaler's bounds, the per-tenant deadline defaults and the
        worker-count clamp all re-derive from the new config at their
        next decision point.  In-flight batches are never interrupted,
        admitted requests are never dropped by a reconfiguration, and
        outputs stay bit-exact — the config changes *scheduling*, not
        arithmetic.  ``max_batch`` may be raised live up to the session
        batch cap fixed at construction
        (``max(SESSION_BATCH_CAP, initial max_batch)``); beyond it the
        config is rejected, because the sessions would refuse the
        batches the former would then build.
        """
        if self._closed:
            raise ServingError(
                "dispatcher is closed; apply_config needs a live fleet"
            )
        if (
            isinstance(new_config, FleetConfig)
            and new_config.max_batch > self._session_max_batch
        ):
            raise ConfigError(
                f"max_batch {new_config.max_batch} exceeds the per-tenant "
                f"session batch cap ({self._session_max_batch}) fixed at "
                "construction; build the dispatcher with a config whose "
                "max_batch covers the largest value you plan to apply live"
            )
        change = self.control.apply(new_config)
        # hard clamp into the new range right away (the autoscaler only
        # moves the fleet on load observations); target is derived under
        # the scale lock so a concurrent autoscale resize cannot leave
        # the clamp operating on a stale worker count
        with self._scale_lock:
            target = min(
                max(self._target_workers, new_config.min_workers),
                new_config.max_workers,
            )
            old = self._resize_locked(target)
        if old is not None:
            self.control.record(
                "scale",
                f"workers {old} -> {target} (config epoch {change.epoch})",
            )
        self.queue.kick()
        return change

    def _resize(self, target: int, *, reason: str) -> None:
        """Grow/shrink the worker-shard fleet to ``target`` threads."""
        with self._scale_lock:
            old = self._resize_locked(target)
        if old is None:
            return
        self.control.record(
            "scale", f"workers {old} -> {target} ({reason})"
        )
        self.queue.kick()  # wake parked workers so retirements land

    def _resize_locked(self, target: int) -> int | None:
        """Resize to ``target`` (scale lock held); old target if changed."""
        if self._closed or target == self._target_workers:
            return None
        self._prune_dead_workers()
        old = self._target_workers
        self._target_workers = target
        if target > old:
            self._spawn_workers(target - old)
        else:
            # retire the newest shards first; they exit at their
            # next scheduling point without claiming work
            live = sorted(
                wid
                for wid, th in self._threads.items()
                if th.is_alive() and wid not in self._retire_ids
            )
            for wid in live[target:]:
                self._retire_ids.add(wid)
        return old

    def _prune_dead_workers(self) -> None:
        """Drop exited threads from the registry (scale lock held).

        Retired workers leave their Thread objects behind; without
        pruning, a long-lived autoscaled fleet grows ``_threads``
        without bound across shrink/grow cycles.
        """
        dead = [
            wid for wid, th in self._threads.items() if not th.is_alive()
        ]
        for wid in dead:
            del self._threads[wid]
            self._retire_ids.discard(wid)

    def _spawn_workers(self, count: int) -> None:
        """Start ``count`` fresh worker threads (scale lock held)."""
        for _ in range(count):
            wid = self._next_worker_id
            self._next_worker_id += 1
            th = threading.Thread(
                target=_worker_entry,
                args=(weakref.ref(self), wid, self._retire_ids),
                name=f"dispatcher-worker-{wid}",
                daemon=True,
            )
            self._threads[wid] = th
            th.start()

    def _maybe_autoscale(self) -> None:
        """One autoscaler observation (called on submit / batch done)."""
        if self._closed:
            return
        with self._stats_lock:
            estimates = [
                s for s in self._service_s.values() if s is not None
            ]
        service_s = (
            sum(estimates) / len(estimates) if estimates else None
        )
        target = self._autoscaler.decide(
            queue_depth=len(self.queue),
            workers=self._target_workers,
            service_s=service_s,
            now=time.monotonic(),
        )
        if target is not None and target != self._target_workers:
            self._resize(target, reason="autoscale")

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        x: np.ndarray | None = None,
        *,
        tenant: str = "default",
        feeds: Mapping[str, np.ndarray] | None = None,
        deadline_s: float | None = None,
    ) -> Ticket:
        """Admit one request; returns a :class:`Ticket` future.

        Validation happens here, at admission — a malformed request is
        the submitter's error and must never poison the co-batched
        requests of other callers.  The deadline default comes from the
        tenant's policy, falling back to the fleet default.
        """
        if self._closed:
            raise ServingError("dispatcher is closed; no new requests")
        try:
            session = self.sessions[tenant]
        except KeyError:
            raise ServingError(
                f"unknown tenant {tenant!r}; registered: "
                f"{sorted(self.sessions)}"
            ) from None
        feeds = self._validate(session, x, feeds, tenant)
        if deadline_s is None:
            policy = self.control.config.policy(tenant)
            deadline_s = (
                policy.deadline_s
                if policy.deadline_s is not None
                else self.control.config.default_deadline_s
            )
        if deadline_s <= 0:
            raise ServingError(
                f"deadline_s must be positive, got {deadline_s}"
            )
        now = time.monotonic()
        with self._submit_lock:
            seq = self._seq
            self._seq += 1
        ticket = Ticket(
            tenant=tenant, feeds=feeds, request_seq=seq,
            enqueue_t=now, deadline_t=now + deadline_s,
        )
        self.queue.put(ticket)  # AdmissionError propagates to the caller
        # counters only move once the request is actually admitted, so a
        # rejected burst neither inflates `submitted` nor starts the
        # throughput wall clock
        with self._submit_lock:
            self._admitted += 1
            if self._first_submit_t is None:
                self._first_submit_t = now
        self._maybe_autoscale()
        return ticket

    def run_many(
        self,
        requests: Sequence,
        *,
        tenant: str = "default",
        deadline_s: float | None = None,
        timeout: float = 60.0,
    ) -> list[DispatchResult]:
        """Submit a closed-loop burst and wait; results in request order.

        Each element is an input array or a feeds mapping (as in
        :meth:`Session.run_batch`), or a ``(tenant, request)`` pair for
        mixed-tenant bursts.
        """
        tickets = []
        for req in requests:
            if isinstance(req, tuple) and len(req) == 2:
                req_tenant, payload = req
            else:
                req_tenant, payload = tenant, req
            if isinstance(payload, Mapping):
                tickets.append(
                    self.submit(
                        tenant=req_tenant, feeds=payload,
                        deadline_s=deadline_s,
                    )
                )
            else:
                tickets.append(
                    self.submit(
                        payload, tenant=req_tenant, deadline_s=deadline_s
                    )
                )
        return [t.result(timeout) for t in tickets]

    @staticmethod
    def _validate(session, x, feeds, tenant) -> Mapping[str, np.ndarray]:
        graph = session.compiled.graph
        if (x is None) == (feeds is None):
            raise ServingError(
                f"tenant {tenant!r}: pass exactly one of x or feeds"
            )
        if feeds is None:
            if len(graph.inputs) != 1:
                raise ServingError(
                    f"tenant {tenant!r}: model {graph.name!r} has inputs "
                    f"{graph.inputs}; pass a feeds mapping"
                )
            feeds = {graph.inputs[0]: np.asarray(x)}
        missing = [n for n in graph.inputs if n not in feeds]
        if missing:
            raise ServingError(
                f"tenant {tenant!r}: request is missing feeds for "
                f"{missing}"
            )
        for name in graph.inputs:
            arr = np.asarray(feeds[name])
            spec = graph.tensors[name].spec
            if arr.dtype != np.int8 or tuple(arr.shape) != tuple(spec.shape):
                raise ServingError(
                    f"tenant {tenant!r}: feed {name!r} must be "
                    f"int8{list(spec.shape)}, got {arr.dtype}{list(arr.shape)}"
                )
        return feeds

    # ------------------------------------------------------------------ #
    # workers
    # ------------------------------------------------------------------ #
    def _serve_batch(self, worker_id: int, batch: list[Ticket]) -> None:
        """Execute one formed micro-batch (called from ``_worker_entry``)."""
        tenant = batch[0].tenant
        session = self.sessions[tenant]
        t0 = time.monotonic()
        try:
            if self._pool is not None:
                # process mode: per-request dispatch across the pool;
                # children return outputs, the parent re-attaches the
                # shared cost template
                handles = [
                    self._pool.apply_async(
                        _process_serve, (id(self), tenant, t.feeds)
                    )
                    for t in batch
                ]
                # bounded: a dead pool child never completes its
                # ApplyResult, and a hung get() would lose this worker
                outputs = [
                    h.get(PROCESS_RESULT_TIMEOUT_S) for h in handles
                ]
                t1 = time.monotonic()
                served = session.package_results(
                    outputs, latency_s=t1 - t0
                )
            else:
                served = session.run_batch([t.feeds for t in batch])
                t1 = time.monotonic()
        except BaseException as exc:  # noqa: BLE001 — forwarded, not hidden
            with self._stats_lock:
                self._failed += len(batch)
            error = ServingError(
                f"worker {worker_id} failed a batch of {len(batch)} "
                f"for tenant {tenant!r}: {exc!r}"
            )
            error.__cause__ = exc
            for t in batch:
                t._fail(error)
            return
        service_s = t1 - t0
        with self._stats_lock:
            prev = self._service_s[tenant]
            self._service_s[tenant] = (
                service_s
                if prev is None
                else 0.5 * prev + 0.5 * service_s
            )
            self._completed += len(batch)
            self._batches += 1
            self._tenant_batches[tenant] += 1
            self._last_done_t = t1
            for ticket in batch:
                self._tenant_requests[tenant] += 1
                self._tenant_latencies[tenant].append(
                    t1 - ticket.enqueue_t
                )
                if t1 <= ticket.deadline_t:
                    self._tenant_hits[tenant] += 1
                else:
                    self._tenant_misses[tenant] += 1
        for ticket, rr in zip(batch, served):
            ticket._fulfill(
                DispatchResult(
                    result=rr,
                    tenant=tenant,
                    worker=worker_id,
                    queue_wait_s=t0 - ticket.enqueue_t,
                    latency_s=t1 - ticket.enqueue_t,
                    deadline_met=t1 <= ticket.deadline_t,
                )
            )
        self._maybe_autoscale()

    # ------------------------------------------------------------------ #
    # lifecycle / introspection
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> DispatchStats:
        """A consistent snapshot of the dispatcher's counters."""
        with self._stats_lock:
            per_tenant = {
                t: TenantStats(
                    requests=self._tenant_requests[t],
                    batches=self._tenant_batches[t],
                    deadline_hits=self._tenant_hits[t],
                    deadline_misses=self._tenant_misses[t],
                    latencies_s=tuple(self._tenant_latencies[t]),
                )
                for t in self.sessions
            }
            wall = 0.0
            if self._first_submit_t is not None and self._last_done_t:
                wall = max(0.0, self._last_done_t - self._first_submit_t)
            return DispatchStats(
                submitted=self._admitted,
                rejected=self.queue.rejected,
                completed=self._completed,
                failed=self._failed,
                batches=self._batches,
                peak_queue_depth=self.queue.peak_depth,
                wall_s=wall,
                per_tenant=per_tenant,
                plan_cache=self.plan_cache.stats,
                shed=self.queue.shed,
                workers=self._target_workers,
                config_epoch=self.control.epoch,
                audit=self.control.audit(),
            )

    def close(self, timeout: float | None = 30.0) -> None:
        """Drain the queue, stop the workers, release the process pool."""
        if self._closed:
            return
        self._closed = True
        self.queue.close()
        with self._scale_lock:
            threads = list(self._threads.values())
        for th in threads:
            th.join(timeout)
        self._finalizer()  # idempotent: registry + pool teardown
        self._pool = None

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
