"""Sharded multi-worker serving dispatcher with a live control plane.

The scale-out layer above :class:`~repro.serving.session.Session`:

.. code-block:: text

                      FleetConfig ──► ControlPlane ──► subscribers
                                          │   (queue, autoscaler)
                                          ▼ apply_config / audit
    submit() ──► RequestQueue ──► batch former ──► worker shards ──► Session
                 (admission +     (priority/QoS     (min..max        (one per
                  load shedding)   micro-batches)    threads)         tenant)

* the **control plane** (:mod:`repro.serving.control`) is a declarative
  :class:`FleetConfig` — per-tenant QoS weights, priority classes,
  deadline defaults and admission quotas, plus fleet-level batching and
  ``min_workers``/``max_workers`` bounds — applied atomically to a
  *live* dispatcher via :meth:`Dispatcher.apply_config`, every change
  validated first and recorded in the audit trail ``stats`` surfaces;
* the **queue** (:mod:`repro.serving.queue`) admits requests up to the
  global and per-tenant bounds, sheds the lowest-priority work first
  when full, and forms single-tenant micro-batches under a
  priority/weighted-stride/deadline policy;
* the **autoscaler** grows and shrinks the worker pool inside the
  config's range from queue depth and the per-tenant EWMA service
  estimates, with hysteresis; resizes land in the audit trail;
* **workers** pop batches and dispatch them through the tenant's warmed
  :class:`Session`.  Thread workers are the default — the stacked-GEMM
  hot path releases the GIL inside NumPy/BLAS, so threads shard real
  work on multicore hosts while sharing every cache.
  ``workers="process"`` forks one worker pool instead and falls back to
  per-request dispatch (sessions are inherited copy-on-write; children
  return raw outputs and the parent re-attaches the shared cost
  template).  The fork pool keeps its initial size; autoscaling moves
  only the thread shards in front of it;
* **tenants** are independent compiled models behind one front door.
  All of them share the process-wide (or caller-supplied)
  :class:`~repro.compiler.cache.PlanCache` — see
  :meth:`Dispatcher.compile` — plus the weight-pack cache and the
  per-plan cost-template cache, all lock-protected.

Correctness is load-bearing: whatever the arrival order, batch
composition, tenant mix or reconfiguration interleaving, every served
request's outputs and ``RequestStats``/``CostReport`` are bit-identical
to running it alone with ``execution="simulate"`` (property-tested in
``tests/serving/test_dispatcher.py`` and
``tests/serving/test_control.py``).  Scheduling and scaling change wall
clock and *which* requests are shed under overload — never bits.
"""

from __future__ import annotations

import math
import multiprocessing
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.compiler.cache import DEFAULT_PLAN_CACHE, CacheStats, PlanCache
from repro.errors import (
    ConfigError,
    InjectedFaultError,
    RequestFailedError,
    ServingError,
    WorkerCrashError,
)

# the repo-wide quantile definition lives with the fleet telemetry (no
# cycle: fleet.telemetry imports nothing from the serving layer, and
# fleet/__init__ resolves its replay-harness exports lazily); the M/G/k
# model + planner the model-driven autoscaler consumes import only
# telemetry and errors, so the same acyclicity argument covers them
from repro.fleet.model import ServiceProfile
from repro.fleet.planner import SLOTarget, plan_capacity
from repro.fleet.telemetry import percentile as _percentile
from repro.serving import faults as _faults
from repro.serving.budgets import RetryBudget
from repro.serving.control import (
    Autoscaler,
    ConfigChange,
    ControlPlane,
    FleetConfig,
)
from repro.serving.queue import RequestQueue, Ticket
from repro.serving.resilience import CircuitBreaker, supervisor_loop
from repro.serving.session import RequestResult, Session

__all__ = ["DispatchResult", "TenantStats", "DispatchStats", "Dispatcher"]


@dataclass(frozen=True)
class DispatchResult:
    """One served request plus its dispatch-level accounting."""

    #: the session-level result (outputs + modeled cost, bit-exact)
    result: RequestResult
    tenant: str
    #: which worker shard executed the batch
    worker: int
    #: seconds spent queued before the batch was formed
    queue_wait_s: float
    #: submit-to-completion seconds (queue wait + batch service)
    latency_s: float
    #: whether completion beat the request's deadline
    deadline_met: bool
    #: ``time.monotonic()`` at admission (the ticket's enqueue instant)
    admit_t: float = 0.0
    #: ``time.monotonic()`` when the serving attempt began (batch start)
    start_t: float = 0.0
    #: ``time.monotonic()`` when the serving attempt finished
    complete_t: float = 0.0

    @property
    def output(self) -> np.ndarray:
        return self.result.output

    @property
    def stats(self):
        return self.result.stats


@dataclass
class TenantStats:
    """Per-tenant aggregate counters (a snapshot, not live state).

    ``latencies_s`` (and the percentiles over it) cover the most recent
    :data:`LATENCY_WINDOW` requests; the scalar counters are lifetime.
    """

    requests: int = 0
    batches: int = 0
    deadline_hits: int = 0
    deadline_misses: int = 0
    latencies_s: tuple[float, ...] = ()
    #: requests that definitively failed (quarantine exhausted, worker
    #: lost mid-batch, or still queued at close)
    failed: int = 0
    #: requests re-run in isolation after their batch faulted
    quarantined: int = 0

    @property
    def deadline_hit_rate(self) -> float:
        total = self.deadline_hits + self.deadline_misses
        return self.deadline_hits / total if total else 0.0

    @property
    def p50_latency_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.50)

    @property
    def p95_latency_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.95)


@dataclass
class DispatchStats:
    """Dispatcher-lifetime snapshot: counters, percentiles, cache stats."""

    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    peak_queue_depth: int = 0
    #: first-submit to last-completion span (0 until something completes)
    wall_s: float = 0.0
    per_tenant: dict[str, TenantStats] = field(default_factory=dict)
    plan_cache: CacheStats | None = None
    #: admitted requests later evicted by priority load shedding
    shed: int = 0
    #: current worker-shard target (autoscaler/config controlled)
    workers: int = 0
    #: how many reconfigurations ``apply_config`` has applied
    config_epoch: int = 0
    #: the control plane's audit trail, oldest first
    audit: tuple[ConfigChange, ...] = ()
    #: requests re-run in isolation after a batch fault (quarantine)
    quarantined: int = 0
    #: extra isolation attempts beyond the first (backoff retries),
    #: i.e. retries the fleet-wide budget granted
    retries: int = 0
    #: retries the fleet-wide retry budget denied (storm guardrail)
    retry_denied: int = 0
    #: retry-budget bookkeeping: ratio/burst knobs plus the
    #: admitted/granted/denied counters behind the token bucket
    retry_budget: Mapping[str, float] = field(default_factory=dict)
    #: the model-driven autoscaler's most recent planner target
    #: (``None`` while heuristic or uncalibrated)
    planned_workers: int | None = None
    #: worker threads the supervisor respawned after a crash
    worker_crashes: int = 0
    #: process pools rebuilt after a child death / broken pipe
    pool_rebuilds: int = 0
    #: tenants currently degraded by an open circuit breaker
    #: (tenant -> the fallback backend serving it right now)
    degraded: Mapping[str, str] = field(default_factory=dict)
    #: worker ids that failed to join within ``close(timeout)``
    unjoined_workers: tuple[int, ...] = ()

    @property
    def requests_per_s(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def retry_ratio(self) -> float:
        """Granted retries per admitted request (the budgeted quantity)."""
        return self.retries / self.submitted if self.submitted else 0.0

    @property
    def deadline_hit_rate(self) -> float:
        hits = sum(t.deadline_hits for t in self.per_tenant.values())
        total = hits + sum(
            t.deadline_misses for t in self.per_tenant.values()
        )
        return hits / total if total else 0.0

    @property
    def _all_latencies(self) -> list[float]:
        out: list[float] = []
        for t in self.per_tenant.values():
            out.extend(t.latencies_s)
        out.sort()
        return out

    @property
    def p50_latency_s(self) -> float:
        return _percentile(self._all_latencies, 0.50)

    @property
    def p95_latency_s(self) -> float:
        return _percentile(self._all_latencies, 0.95)


# --------------------------------------------------------------------------- #
# process-mode plumbing
# --------------------------------------------------------------------------- #
#: dispatcher-id -> tenant sessions; populated in the parent *before* the
#: worker pool forks, so children inherit warmed sessions copy-on-write
#: and the IPC payload stays (feeds in, outputs out) — no model pickling.
_PROCESS_SESSIONS: dict[int, Mapping[str, Session]] = {}

#: dispatcher-id -> fault injector, registered before the pool forks so
#: children evaluate the same plan (decisions are pure hash draws, so a
#: request poisoned in the parent is poisoned in every child too)
_PROCESS_INJECTORS: dict[int, "_faults.FaultInjector"] = {}

#: how many recent per-request latencies each tenant's percentile window
#: keeps; a fleet running for days must not grow stats without bound
LATENCY_WINDOW = 4096

#: default bound on one process-pool request round-trip (the live value
#: is ``FleetConfig.process_result_timeout_s``); a dead pool child never
#: completes its ApplyResult, so an unbounded get() would hang a worker
PROCESS_RESULT_TIMEOUT_S = 120.0

#: floor on the per-tenant Session batch cap.  Sessions are built with
#: ``max(SESSION_BATCH_CAP, construction max_batch)`` so apply_config can
#: raise the fleet's ``max_batch`` live without forming batches the
#: sessions would reject; configs above the cap are rejected up front.
SESSION_BATCH_CAP = 256

#: observation floors before the model-driven autoscaler trusts its own
#: calibration; below them ``autoscale_mode="model"`` falls back to the
#: queue-depth heuristic
MODEL_MIN_ARRIVALS = 16
MODEL_MIN_BATCHES = 8

#: recent-history windows feeding the capacity model: admission instants
#: (measured arrival rate) and batch (span, size) pairs (service profile)
ARRIVAL_HISTORY = 2048
SPAN_HISTORY = 512


def _process_serve(
    registry_key: int,
    tenant: str,
    feeds,
    request_seq: int | None = None,
    attempt: int = 0,
    execution: str | None = None,
):
    """Child-side entry: run one request, return only the output tensors.

    ``request_seq``/``attempt`` establish the fault-injection scope (the
    ``"process.child"`` point fires here, keyed by the request, which is
    how a chaos plan kills a specific child mid-flood); ``execution``
    carries the parent-side circuit breaker's backend choice.
    """
    session = _PROCESS_SESSIONS[registry_key][tenant]
    injector = _PROCESS_INJECTORS.get(registry_key)
    if injector is None:
        return session.run_batch([feeds], execution=execution)[0].outputs
    with _faults.scope(
        injector, tenant=tenant, key=request_seq, attempt=attempt
    ):
        _faults.perhaps("process.child")
        return session.run_batch([feeds], execution=execution)[0].outputs


def _finalize_dispatcher(
    registry_key, pool_box, queue, frozen_weights, supervisor_stop
) -> None:
    """Tear down everything a dropped dispatcher would otherwise leak.

    Registered as a ``weakref.finalize`` (and invoked by ``close()``):
    stops the supervisor, closes the queue so blocked workers drain and
    exit, drops the fork registry entries, kills the pool, and re-thaws
    weights frozen at fork.  Runs for abandoned dispatchers because the
    worker and supervisor threads hold only *weak* references back to
    the dispatcher — a bound-method thread target would pin it alive
    forever.  ``pool_box`` is a one-slot holder rather than the pool
    itself: a pool rebuild mid-flight swaps the slot, and the finalizer
    must kill whatever pool is current *then*, not the one that existed
    at construction.
    """
    supervisor_stop.set()
    queue.close()
    _PROCESS_SESSIONS.pop(registry_key, None)
    _PROCESS_INJECTORS.pop(registry_key, None)
    pool, pool_box[0] = pool_box[0], None
    if pool is not None:
        pool.terminate()
        pool.join()
    for w in frozen_weights:
        w.setflags(write=True)


def _worker_entry(
    dispatcher_ref: "weakref.ref",
    worker_id: int,
    retire_ids: set[int],
    clean_exits: set[int],
) -> None:
    """Worker thread target: the loop, minus injected-crash noise.

    An *injected* crash (:class:`~repro.errors.InjectedFaultError` and
    its ``WorkerCrashError`` subclass) kills the thread exactly like a
    real bug would — no ``clean_exits`` record, so the supervisor sees
    a crash and respawns — but dies silently instead of spraying the
    default threading excepthook over every chaos test's output.  Real
    bugs still traceback.
    """
    try:
        _worker_loop(dispatcher_ref, worker_id, retire_ids, clean_exits)
    except InjectedFaultError:
        return


def _worker_loop(
    dispatcher_ref: "weakref.ref",
    worker_id: int,
    retire_ids: set[int],
    clean_exits: set[int],
) -> None:
    """Worker thread body, holding the dispatcher only weakly.

    Strong references are re-taken per batch and dropped before the
    blocking ``pop_batch`` wait, so an abandoned dispatcher can be
    garbage collected — its finalizer then closes the queue, which
    wakes the workers and lets them exit.  ``retire_ids`` is the
    autoscaler's shrink signal: a worker that finds its id there exits
    at the next scheduling point without claiming work.  Every
    *deliberate* exit path records itself in ``clean_exits`` first, so
    the supervisor can tell a retired worker from a crashed one (both
    sets are shared state, deliberately not dispatcher references).

    A worker dies like a real buggy worker would: the ``"worker.loop"``
    fault point fires *before* any work is claimed (an injected crash
    orphans no batch), and an exception escaping ``_serve_batch`` first
    fails whatever tickets that batch still owes (no waiter may hang on
    a dead thread), then propagates and kills the thread — detection
    and respawn belong to the supervisor, not to the patient.
    """
    while True:
        if worker_id in retire_ids:
            retire_ids.discard(worker_id)
            clean_exits.add(worker_id)
            return
        dispatcher = dispatcher_ref()
        if dispatcher is None:
            clean_exits.add(worker_id)
            return
        injector = dispatcher._faults
        if injector is not None:
            # raises WorkerCrashError for kind="crash" specs; the frame
            # (and its strong reference) dies with the thread
            injector.fire("worker.loop", key=worker_id)
        queue = dispatcher.queue
        max_batch = dispatcher.max_batch
        batch_timeout_s = dispatcher.batch_timeout_s
        # the dict's bound .get keeps the dict alive, not the dispatcher
        estimate = dispatcher._service_s.get
        del dispatcher
        batch = queue.pop_batch(
            max_batch,
            batch_timeout_s,
            estimate,
            stop=lambda: worker_id in retire_ids,
        )
        if batch is None:
            retire_ids.discard(worker_id)
            clean_exits.add(worker_id)
            return
        dispatcher = dispatcher_ref()
        if dispatcher is None:
            error = ServingError(
                "dispatcher was dropped while this batch was queued; "
                "keep the dispatcher alive (or use `with`) until every "
                "ticket has resolved"
            )
            for ticket in batch:
                ticket._fail(error)
            return
        try:
            dispatcher._serve_batch(worker_id, batch)
        except BaseException as exc:  # noqa: BLE001 — fail tickets, then die
            dispatcher._worker_died(worker_id, batch, exc)
            raise
        del dispatcher


class Dispatcher:
    """Queue → QoS micro-batches → worker shards → sessions, live-tunable.

    Parameters
    ----------
    models:
        ``{tenant name: CompiledModel}`` (or a single ``CompiledModel``,
        served as tenant ``"default"``).
    workers:
        Initial number of worker shards (clamped into the config's
        ``min_workers..max_workers`` range; the autoscaler moves the
        fleet inside it afterwards).
    worker_mode:
        ``"thread"`` (default; shards share every cache and the GEMMs
        release the GIL) or ``"process"`` (fork a pool; per-request
        dispatch inside each formed batch; the pool keeps its initial
        size).
    execution:
        Backend for every tenant session; the ``"turbo"`` default keeps
        bit-exactness while running the stacked GEMMs at BLAS rate.
    max_batch, max_queue_depth, default_deadline_s, batch_timeout_s:
        Shorthand for the matching :class:`FleetConfig` fields when no
        ``config`` is given.
    plan_cache:
        The shared :class:`PlanCache` whose hit/miss statistics the
        dispatcher reports (default: the process-wide cache every
        ``repro.compile`` call already goes through).
    config:
        Full declarative :class:`FleetConfig` (overrides the shorthand
        kwargs above).  Without one, a fixed-size config pinning
        ``min_workers = max_workers = workers`` reproduces the classic
        fixed-fleet behavior.  Swap it live with :meth:`apply_config`.
    faults:
        Optional :class:`~repro.serving.faults.FaultPlan` (or prepared
        injector) evaluated at the serving path's named injection
        points — chaos testing only; ``None`` (the default) reduces
        every hook to an ``is None`` check.
    """

    def __init__(
        self,
        models,
        *,
        workers: int = 4,
        worker_mode: str = "thread",
        execution: str = "turbo",
        max_batch: int = 8,
        max_queue_depth: int = 256,
        default_deadline_s: float = 0.5,
        batch_timeout_s: float = 0.002,
        plan_cache: PlanCache | None = None,
        config: FleetConfig | None = None,
        faults: "_faults.FaultPlan | _faults.FaultInjector | None" = None,
    ):
        if workers <= 0:
            raise ServingError(f"need at least one worker, got {workers}")
        if worker_mode not in ("thread", "process"):
            raise ServingError(
                f"unknown worker_mode {worker_mode!r}; "
                "use 'thread' or 'process'"
            )
        if max_batch <= 0:
            raise ServingError(f"max_batch must be positive, got {max_batch}")
        if default_deadline_s <= 0 or batch_timeout_s < 0:
            raise ServingError(
                "default_deadline_s must be > 0 and batch_timeout_s >= 0"
            )
        if config is None:
            # classic fixed fleet: exactly `workers` shards, no scaling
            config = FleetConfig(
                min_workers=workers,
                max_workers=workers,
                max_batch=max_batch,
                max_queue_depth=max_queue_depth,
                default_deadline_s=default_deadline_s,
                batch_timeout_s=batch_timeout_s,
            )
        if not isinstance(models, Mapping):
            models = {"default": models}
        if not models:
            raise ServingError("dispatcher needs at least one tenant model")
        self.workers = workers
        self.worker_mode = worker_mode
        self.execution = execution
        self.plan_cache = (
            plan_cache if plan_cache is not None else DEFAULT_PLAN_CACHE
        )
        self._faults = (
            None if faults is None else _faults.FaultInjector(faults)
        )
        #: one warmed session per tenant; plans/packs/templates frozen here.
        #: The session batch cap is fixed at construction with headroom
        #: above the initial config so apply_config can raise ``max_batch``
        #: live — the batch former must never form a batch the sessions
        #: reject (that would fail every ticket in it).
        self._session_max_batch = max(
            SESSION_BATCH_CAP, max_batch, config.max_batch
        )
        self.sessions: dict[str, Session] = {
            tenant: Session(
                cm, execution=execution, max_batch=self._session_max_batch
            )
            for tenant, cm in models.items()
        }
        #: the control plane: validated atomic config swaps + audit trail
        self.control = ControlPlane(config)
        self.queue = RequestQueue(config=config)
        self._autoscaler = Autoscaler(config)
        self.control.subscribe(self.queue)
        self.control.subscribe(self._autoscaler)
        self._seq = 0
        self._admitted = 0
        self._submit_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._completed = 0
        self._failed = 0
        self._batches = 0
        self._first_submit_t: float | None = None
        self._last_done_t: float | None = None
        self._tenant_requests = {t: 0 for t in self.sessions}
        self._tenant_batches = {t: 0 for t in self.sessions}
        self._tenant_hits = {t: 0 for t in self.sessions}
        self._tenant_misses = {t: 0 for t in self.sessions}
        self._tenant_failed = {t: 0 for t in self.sessions}
        self._tenant_quarantined = {t: 0 for t in self.sessions}
        self._tenant_latencies: dict[str, deque[float]] = {
            t: deque(maxlen=LATENCY_WINDOW) for t in self.sessions
        }
        #: EWMA of per-batch service seconds, the deadline-flush estimate
        self._service_s: dict[str, float | None] = {
            t: None for t in self.sessions
        }
        self._quarantined = 0
        self._retries = 0
        self._retry_denied = 0
        #: fleet-wide retry guardrail: admissions fill it, retries drain
        #: it, so a fault storm can never amplify itself past
        #: ``burst + ratio x admitted`` extra attempts
        self._retry_budget = RetryBudget(
            config.retry_budget_ratio, config.retry_budget_burst
        )
        #: model-driven autoscaler inputs: recent admission instants
        #: (measured arrival rate) and batch (span, size) history
        #: (service profile); bounded so a long-lived fleet stays O(1)
        self._admit_times: deque[float] = deque(maxlen=ARRIVAL_HISTORY)
        self._span_history: deque[tuple[float, int]] = deque(
            maxlen=SPAN_HISTORY
        )
        self._planned_workers: int | None = None
        self._worker_crashes = 0
        self._pool_rebuilds = 0
        self._unjoined_workers: tuple[int, ...] = ()
        self._closed = False
        #: per-tenant circuit breakers degrading a failing backend down
        #: DEGRADE_CHAIN; config_fn closes over the control plane (not
        #: self) to keep the dispatcher free of uncollectable cycles
        control = self.control
        self._breakers: dict[str, CircuitBreaker] = {
            t: CircuitBreaker(execution, lambda: control.config)
            for t in self.sessions
        }

        # one-slot pool holder: a rebuild swaps the slot in place, so
        # the finalizer (registered once, below) always kills the
        # *current* pool rather than the construction-time one
        self._pool_box: list = [None]
        self._pool_lock = threading.Lock()
        self._frozen_weights: list[np.ndarray] = []
        if worker_mode == "process":
            self._pool_box[0] = self._fork_pool()
        self._supervisor_stop = threading.Event()
        # unconditional cleanup for abandoned dispatchers (any mode):
        # stops the supervisor, closes the queue (waking and retiring
        # the workers), drops the fork registry entries, kills the
        # current pool, re-thaws frozen weights
        self._finalizer = weakref.finalize(
            self, _finalize_dispatcher, id(self), self._pool_box,
            self.queue, self._frozen_weights, self._supervisor_stop,
        )
        # worker-shard fleet: id -> thread, resized live by the
        # autoscaler / apply_config; `_retire_ids` is the shrink signal
        # and `_clean_exits` the deliberate-exit log, both shared with
        # the workers (never a dispatcher reference)
        self._scale_lock = threading.Lock()
        self._threads: dict[int, threading.Thread] = {}
        self._retire_ids: set[int] = set()
        self._clean_exits: set[int] = set()
        self._next_worker_id = 0
        self._target_workers = min(
            max(workers, config.min_workers), config.max_workers
        )
        with self._scale_lock:
            self._spawn_workers(self._target_workers)
        self._supervisor = threading.Thread(
            target=supervisor_loop,
            args=(weakref.ref(self), self._supervisor_stop),
            name="dispatcher-supervisor",
            daemon=True,
        )
        self._supervisor.start()

    @property
    def _pool(self):
        """The current process pool (swapped in place by rebuilds)."""
        return self._pool_box[0]

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def compile(
        cls,
        graphs: Mapping[str, object],
        *,
        device=None,
        cache: PlanCache | None = None,
        seed: int = 0,
        **dispatcher_kwargs,
    ) -> "Dispatcher":
        """Compile every tenant graph through one shared plan cache.

        Tenants serving the same architecture (the fleet case: one model,
        many customers) hit the cache instead of re-solving the
        constraint systems; the resulting hit rate is visible in
        :attr:`stats`.
        """
        from repro.compiler.compile import compile_model
        from repro.mcu.device import STM32F411RE

        cache = cache if cache is not None else PlanCache()
        device = device if device is not None else STM32F411RE
        compiled = {
            tenant: compile_model(g, device=device, cache=cache, seed=seed)
            for tenant, g in graphs.items()
        }
        return cls(compiled, plan_cache=cache, **dispatcher_kwargs)

    def _fork_pool(self):
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:
            raise ServingError(
                "workers='process' needs fork() (POSIX); "
                "use worker_mode='thread' on this platform"
            ) from None
        # children must inherit the sessions (and any fault injector):
        # register before forking.
        # fork() copying a mutex held by *another* thread would deadlock
        # the children; the at-fork handlers in repro.kernels.base fork
        # at a quiescent point for every serving-path lock.
        _PROCESS_SESSIONS[id(self)] = self.sessions
        if self._faults is not None:
            _PROCESS_INJECTORS[id(self)] = self._faults
        # children serve the weights as forked, so in-place mutation in
        # the parent can never reach them: freeze the arrays for the
        # dispatcher's lifetime so a mutation raises at the write site
        # instead of silently serving the pre-fork snapshot (thread
        # workers re-pack mutated weights automatically and stay thawed)
        from repro.runtime.pipeline import stage_weight_arrays

        for session in self.sessions.values():
            for seg in session.compiled.segments:
                for stage in seg.pipeline.stages:
                    for w in stage_weight_arrays(stage):
                        if w.flags.writeable:
                            w.setflags(write=False)
                            self._frozen_weights.append(w)
        try:
            return ctx.Pool(processes=self.workers)
        except BaseException:
            _PROCESS_SESSIONS.pop(id(self), None)
            _PROCESS_INJECTORS.pop(id(self), None)
            for w in self._frozen_weights:
                w.setflags(write=True)
            raise

    # ------------------------------------------------------------------ #
    # control plane
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> FleetConfig:
        """The live declarative config (an immutable snapshot)."""
        return self.control.config

    @property
    def max_batch(self) -> int:
        return self.control.config.max_batch

    @property
    def batch_timeout_s(self) -> float:
        return self.control.config.batch_timeout_s

    @property
    def default_deadline_s(self) -> float:
        return self.control.config.default_deadline_s

    @property
    def worker_count(self) -> int:
        """The current worker-shard target (live threads converge to it)."""
        return self._target_workers

    @property
    def live_workers(self) -> int:
        """Worker threads currently alive (lags the target briefly)."""
        with self._scale_lock:
            return sum(
                1
                for wid, th in self._threads.items()
                if th.is_alive() and wid not in self._retire_ids
            )

    def apply_config(self, new_config: FleetConfig) -> ConfigChange:
        """Reconfigure the **live** dispatcher; returns the audit record.

        Validated first (:class:`~repro.errors.ConfigError` leaves
        everything untouched), then swapped atomically: the queue's
        batch former, admission control and load shedding, the
        autoscaler's bounds, the per-tenant deadline defaults and the
        worker-count clamp all re-derive from the new config at their
        next decision point.  In-flight batches are never interrupted,
        admitted requests are never dropped by a reconfiguration, and
        outputs stay bit-exact — the config changes *scheduling*, not
        arithmetic.  ``max_batch`` may be raised live up to the session
        batch cap fixed at construction
        (``max(SESSION_BATCH_CAP, initial max_batch)``); beyond it the
        config is rejected, because the sessions would refuse the
        batches the former would then build.
        """
        if self._closed:
            raise ServingError(
                "dispatcher is closed; apply_config needs a live fleet"
            )
        if (
            isinstance(new_config, FleetConfig)
            and new_config.max_batch > self._session_max_batch
        ):
            raise ConfigError(
                f"max_batch {new_config.max_batch} exceeds the per-tenant "
                f"session batch cap ({self._session_max_batch}) fixed at "
                "construction; build the dispatcher with a config whose "
                "max_batch covers the largest value you plan to apply live"
            )
        change = self.control.apply(new_config)
        # adopt the new budget knobs without resetting the bucket's
        # admission/grant history: a mid-storm reconfig must not hand
        # the retry path a fresh burst allowance
        self._retry_budget.reconfigure(
            new_config.retry_budget_ratio, new_config.retry_budget_burst
        )
        # hard clamp into the new range right away (the autoscaler only
        # moves the fleet on load observations); target is derived under
        # the scale lock so a concurrent autoscale resize cannot leave
        # the clamp operating on a stale worker count
        with self._scale_lock:
            target = min(
                max(self._target_workers, new_config.min_workers),
                new_config.max_workers,
            )
            old = self._resize_locked(target)
        if old is not None:
            self.control.record(
                "scale",
                f"workers {old} -> {target} (config epoch {change.epoch})",
            )
        self.queue.kick()
        return change

    def _resize(self, target: int, *, reason: str) -> None:
        """Grow/shrink the worker-shard fleet to ``target`` threads."""
        with self._scale_lock:
            old = self._resize_locked(target)
        if old is None:
            return
        self.control.record(
            "scale", f"workers {old} -> {target} ({reason})"
        )
        self.queue.kick()  # wake parked workers so retirements land

    def _resize_locked(self, target: int) -> int | None:
        """Resize to ``target`` (scale lock held); old target if changed."""
        if self._closed or target == self._target_workers:
            return None
        self._prune_dead_workers()
        old = self._target_workers
        self._target_workers = target
        if target > old:
            self._spawn_workers(target - old)
        else:
            # retire the newest shards first; they exit at their
            # next scheduling point without claiming work
            live = sorted(
                wid
                for wid, th in self._threads.items()
                if th.is_alive() and wid not in self._retire_ids
            )
            for wid in live[target:]:
                self._retire_ids.add(wid)
        return old

    def _prune_dead_workers(self) -> None:
        """Drop exited threads from the registry (scale lock held).

        Retired workers leave their Thread objects behind; without
        pruning, a long-lived autoscaled fleet grows ``_threads``
        without bound across shrink/grow cycles.
        """
        dead = [
            wid for wid, th in self._threads.items() if not th.is_alive()
        ]
        for wid in dead:
            del self._threads[wid]
            self._retire_ids.discard(wid)
            self._clean_exits.discard(wid)

    def _spawn_workers(self, count: int) -> None:
        """Start ``count`` fresh worker threads (scale lock held)."""
        for _ in range(count):
            wid = self._next_worker_id
            self._next_worker_id += 1
            th = threading.Thread(
                target=_worker_entry,
                args=(
                    weakref.ref(self), wid, self._retire_ids,
                    self._clean_exits,
                ),
                name=f"dispatcher-worker-{wid}",
                daemon=True,
            )
            self._threads[wid] = th
            th.start()

    def _supervise(self) -> None:
        """One watchdog sweep: respawn worker threads that crashed.

        A *crashed* worker is one whose thread exited without recording
        itself in ``_clean_exits`` — retirement, queue close and
        dispatcher teardown all do, so anything else died of an
        exception.  The sweep prunes the corpses, respawns up to the
        current target (``min_workers..max_workers`` still governs the
        target itself) and audits the crash; it deliberately does *not*
        diagnose causes — dead is dead, and the only correct response
        is a fresh thread.
        """
        if self._closed:
            return
        with self._scale_lock:
            if self._closed:
                return
            crashed = [
                wid
                for wid, th in self._threads.items()
                if not th.is_alive() and wid not in self._clean_exits
            ]
            self._prune_dead_workers()
            live = sum(
                1
                for wid, th in self._threads.items()
                if wid not in self._retire_ids
            )
            deficit = self._target_workers - live
            if deficit > 0:
                self._spawn_workers(deficit)
        if crashed:
            with self._stats_lock:
                self._worker_crashes += len(crashed)
            self.control.record(
                "crash",
                f"worker{'s' if len(crashed) != 1 else ''} "
                f"{crashed} crashed; respawned to "
                f"{self._target_workers} shard(s)",
            )
            self.queue.kick()

    def _maybe_autoscale(self) -> None:
        """One autoscaler observation (called on submit / batch done).

        ``autoscale_mode="model"`` plans the worker target from first
        principles — the M/G/k capacity planner at the *measured*
        arrival rate and service profile, times ``fault_headroom``
        while any circuit breaker is open — and only falls back to the
        queue-depth heuristic until enough observations calibrate it.
        """
        if self._closed:
            return
        cfg = self.control.config
        if cfg.autoscale_mode == "model":
            planned = self._plan_workers(cfg)
            if planned is not None:
                if any(
                    b.state == "open" for b in self._breakers.values()
                ):
                    planned = math.ceil(planned * cfg.fault_headroom)
                planned = min(planned, cfg.max_workers)
                with self._stats_lock:
                    self._planned_workers = planned
                target = self._autoscaler.decide_target(
                    target=planned,
                    workers=self._target_workers,
                    now=time.monotonic(),
                )
                if target is not None and target != self._target_workers:
                    self._resize(target, reason="autoscale-model")
                return
        with self._stats_lock:
            estimates = [
                s for s in self._service_s.values() if s is not None
            ]
        service_s = (
            sum(estimates) / len(estimates) if estimates else None
        )
        target = self._autoscaler.decide(
            queue_depth=len(self.queue),
            workers=self._target_workers,
            service_s=service_s,
            now=time.monotonic(),
        )
        if target is not None and target != self._target_workers:
            self._resize(target, reason="autoscale")

    def _plan_workers(self, cfg: FleetConfig) -> int | None:
        """The planner's worker target, or ``None`` while uncalibrated.

        Measures the arrival rate over the recent admission instants,
        parameterizes a :class:`ServiceProfile` from the recent batch
        spans, and asks :func:`plan_capacity` for the smallest fleet
        meeting the config's deadline SLO — the ROADMAP's "feed the
        planner's answer back" loop.  Returns ``None`` (heuristic
        fallback) below the observation floors, so a cold fleet never
        steers by an unmeasured model.
        """
        with self._stats_lock:
            admits = tuple(self._admit_times)
            spans = tuple(self._span_history)
        if (
            len(admits) < MODEL_MIN_ARRIVALS
            or len(spans) < MODEL_MIN_BATCHES
        ):
            return None
        window = admits[-1] - admits[0]
        if window <= 0:
            return None
        rate = (len(admits) - 1) / window
        profile = ServiceProfile(
            spans_s=tuple(sorted(s for s, _ in spans)),
            mean_batch_size=max(
                1.0, sum(n for _, n in spans) / len(spans)
            ),
        )
        deadline_s = cfg.default_deadline_s
        slo = SLOTarget(
            p95_latency_s=deadline_s,
            deadline_hit_rate=cfg.autoscale_hit_rate,
            deadline_s=deadline_s,
        )
        try:
            plan = plan_capacity(
                arrival_rate_rps=rate,
                profile=profile,
                slo=slo,
                max_workers=cfg.max_workers,
            )
        except ServingError:
            return None
        # infeasible plans still return max_workers — the best the
        # config allows, and exactly what a storm wants deployed
        return plan.workers

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        x: np.ndarray | None = None,
        *,
        tenant: str = "default",
        feeds: Mapping[str, np.ndarray] | None = None,
        deadline_s: float | None = None,
    ) -> Ticket:
        """Admit one request; returns a :class:`Ticket` future.

        Validation happens here, at admission — a malformed request is
        the submitter's error and must never poison the co-batched
        requests of other callers.  The deadline default comes from the
        tenant's policy, falling back to the fleet default.
        """
        if self._closed:
            raise ServingError("dispatcher is closed; no new requests")
        try:
            session = self.sessions[tenant]
        except KeyError:
            raise ServingError(
                f"unknown tenant {tenant!r}; registered: "
                f"{sorted(self.sessions)}"
            ) from None
        feeds = self._validate(session, x, feeds, tenant)
        if deadline_s is None:
            policy = self.control.config.policy(tenant)
            deadline_s = (
                policy.deadline_s
                if policy.deadline_s is not None
                else self.control.config.default_deadline_s
            )
        if deadline_s <= 0:
            raise ServingError(
                f"deadline_s must be positive, got {deadline_s}"
            )
        now = time.monotonic()
        with self._submit_lock:
            seq = self._seq
            self._seq += 1
        ticket = Ticket(
            tenant=tenant, feeds=feeds, request_seq=seq,
            enqueue_t=now, deadline_t=now + deadline_s,
        )
        self.queue.put(ticket)  # AdmissionError propagates to the caller
        # counters only move once the request is actually admitted, so a
        # rejected burst neither inflates `submitted` nor starts the
        # throughput wall clock
        with self._submit_lock:
            self._admitted += 1
            if self._first_submit_t is None:
                self._first_submit_t = now
            self._admit_times.append(now)
        # every admission deposits retry allowance: the budget is a
        # ratio of real work, not wall clock
        self._retry_budget.note_admitted()
        self._maybe_autoscale()
        return ticket

    def run_many(
        self,
        requests: Sequence,
        *,
        tenant: str = "default",
        deadline_s: float | None = None,
        timeout: float = 60.0,
    ) -> list[DispatchResult]:
        """Submit a closed-loop burst and wait; results in request order.

        Each element is an input array or a feeds mapping (as in
        :meth:`Session.run_batch`), or a ``(tenant, request)`` pair for
        mixed-tenant bursts.
        """
        tickets = []
        for req in requests:
            if isinstance(req, tuple) and len(req) == 2:
                req_tenant, payload = req
            else:
                req_tenant, payload = tenant, req
            if isinstance(payload, Mapping):
                tickets.append(
                    self.submit(
                        tenant=req_tenant, feeds=payload,
                        deadline_s=deadline_s,
                    )
                )
            else:
                tickets.append(
                    self.submit(
                        payload, tenant=req_tenant, deadline_s=deadline_s
                    )
                )
        return [t.result(timeout) for t in tickets]

    @staticmethod
    def _validate(session, x, feeds, tenant) -> Mapping[str, np.ndarray]:
        graph = session.compiled.graph
        if (x is None) == (feeds is None):
            raise ServingError(
                f"tenant {tenant!r}: pass exactly one of x or feeds"
            )
        if feeds is None:
            if len(graph.inputs) != 1:
                raise ServingError(
                    f"tenant {tenant!r}: model {graph.name!r} has inputs "
                    f"{graph.inputs}; pass a feeds mapping"
                )
            feeds = {graph.inputs[0]: np.asarray(x)}
        missing = [n for n in graph.inputs if n not in feeds]
        if missing:
            raise ServingError(
                f"tenant {tenant!r}: request is missing feeds for "
                f"{missing}"
            )
        for name in graph.inputs:
            arr = np.asarray(feeds[name])
            spec = graph.tensors[name].spec
            if arr.dtype != np.int8 or tuple(arr.shape) != tuple(spec.shape):
                raise ServingError(
                    f"tenant {tenant!r}: feed {name!r} must be "
                    f"int8{list(spec.shape)}, got {arr.dtype}{list(arr.shape)}"
                )
        return feeds

    # ------------------------------------------------------------------ #
    # workers
    # ------------------------------------------------------------------ #
    def _serve_batch(self, worker_id: int, batch: list[Ticket]) -> None:
        """Execute one formed micro-batch (called from ``_worker_entry``).

        The happy path is one co-batched session dispatch.  On failure
        the batch is **quarantined**: each member is re-run in
        isolation (with the config's retry/backoff budgeted against its
        deadline), so only the offending request(s) fail — with a typed
        :class:`RequestFailedError` — while innocents still succeed.
        Every attempt feeds the tenant's circuit breaker, which may
        degrade the execution backend for subsequent batches (bit-exact
        by construction, so degradation never shows in outputs).
        """
        tenant = batch[0].tenant
        breaker = self._breakers[tenant]
        execution, probe = breaker.plan_execution()
        t0 = time.monotonic()
        try:
            served, t1 = self._execute_once(
                tenant, batch, attempt=0, execution=execution
            )
        except WorkerCrashError:
            # a whole-worker crash, not a request fault: let it escape —
            # the worker-entry safety net fails the batch and the
            # supervisor respawns the thread
            raise
        except BaseException as exc:  # noqa: BLE001 — quarantined below
            # the failed attempt still took real service time; feeding
            # it into the EWMA keeps the drain model honest for tenants
            # whose requests always fault
            self._note_failure(tenant, time.monotonic() - t0)
            self._breaker_event(
                tenant, breaker.record(False, probe=probe)
            )
            self._quarantine(worker_id, tenant, batch, exc)
            return
        self._breaker_event(tenant, breaker.record(True, probe=probe))
        self._complete(worker_id, tenant, batch, served, t0, t1)
        self._maybe_autoscale()

    def _execute_once(
        self,
        tenant: str,
        tickets: list[Ticket],
        *,
        attempt: int,
        execution: str | None,
    ) -> tuple[list[RequestResult], float]:
        """One dispatch attempt for ``tickets``; returns ``(served, t1)``.

        Fires the ``"dispatch.request"`` fault point once per ticket
        (keyed by request seq, so a poisoned request poisons every
        batch it lands in — the quarantine invariant), then runs the
        batch through the pool or the tenant session under the fault
        scope.  A process-pool transport failure (dead child → result
        timeout, broken pipe) triggers a pool rebuild before re-raising
        so the *next* attempt runs against a healthy pool.
        """
        session = self.sessions[tenant]
        injector = self._faults
        if injector is not None:
            for t in tickets:
                injector.fire(
                    "dispatch.request",
                    key=t.request_seq,
                    tenant=tenant,
                    attempt=attempt,
                )
        t0 = time.monotonic()
        pool = self._pool
        if pool is not None:
            handles = [
                pool.apply_async(
                    _process_serve,
                    (
                        id(self), tenant, t.feeds, t.request_seq,
                        attempt, execution,
                    ),
                )
                for t in tickets
            ]
            # bounded: a dead pool child never completes its
            # ApplyResult, and a hung get() would lose this worker
            timeout = self.config.process_result_timeout_s
            try:
                outputs = [h.get(timeout) for h in handles]
            except (
                multiprocessing.TimeoutError, OSError, EOFError
            ) as exc:
                self._rebuild_pool(pool, exc)
                raise
            t1 = time.monotonic()
            served = session.package_results(outputs, latency_s=t1 - t0)
        elif injector is not None:
            with _faults.scope(
                injector,
                tenant=tenant,
                key=tickets[0].request_seq,
                attempt=attempt,
            ):
                served = session.run_batch(
                    [t.feeds for t in tickets], execution=execution
                )
            t1 = time.monotonic()
        else:
            served = session.run_batch(
                [t.feeds for t in tickets], execution=execution
            )
            t1 = time.monotonic()
        return served, t1

    def _quarantine(
        self,
        worker_id: int,
        tenant: str,
        batch: list[Ticket],
        batch_exc: BaseException,
    ) -> None:
        """Re-run a failed batch's members individually (poison isolation)."""
        with self._stats_lock:
            self._quarantined += len(batch)
            self._tenant_quarantined[tenant] += len(batch)
        self.control.record(
            "quarantine",
            f"worker {worker_id}: batch of {len(batch)} for "
            f"{tenant!r} quarantined after {batch_exc!r}",
        )
        for ticket in batch:
            self._serve_single(worker_id, tenant, ticket, batch_exc)
        self._maybe_autoscale()

    def _serve_single(
        self,
        worker_id: int,
        tenant: str,
        ticket: Ticket,
        batch_exc: BaseException,
    ) -> None:
        """Isolation attempts for one quarantined ticket.

        Attempt numbering is shared with the fault plan: the failed
        batch run was attempt 0, isolation runs are 1, 2, ... — so a
        spec with ``fail_attempts=1`` models a transient fault that the
        first isolation re-run survives.  Backoff sleeps are budgeted
        against the ticket's remaining deadline: a retry that could not
        finish in time is not attempted at all.
        """
        breaker = self._breakers[tenant]
        retry = self.config.retry
        last_exc = batch_exc
        attempts = 0
        for k in range(1, retry.max_attempts + 1):
            if k > 1:
                delay = retry.backoff(k, key=ticket.request_seq)
                est = self._service_s.get(tenant) or 0.0
                budget = ticket.deadline_t - time.monotonic()
                if delay + est > max(0.0, budget):
                    break
                if not self._retry_budget.allow():
                    # fleet-wide retry budget exhausted: fail this
                    # request now rather than let a storm amplify
                    # itself through the retry path (the first
                    # isolation run above was still mandatory)
                    with self._stats_lock:
                        self._retry_denied += 1
                        first_denial = self._retry_denied == 1
                    if first_denial:
                        snap = self._retry_budget.snapshot
                        self.control.record(
                            "retry-budget",
                            f"retry budget exhausted after "
                            f"{snap['granted']:.0f} grant(s) "
                            f"(ratio {snap['ratio']:.3f}, burst "
                            f"{snap['burst']:.0f}); denying further "
                            "retries until admissions refill it",
                        )
                    break
                if delay > 0:
                    time.sleep(delay)
                with self._stats_lock:
                    self._retries += 1
            attempts = k
            execution, probe = breaker.plan_execution()
            t0 = time.monotonic()
            try:
                served, t1 = self._execute_once(
                    tenant, [ticket], attempt=k, execution=execution
                )
            except WorkerCrashError:
                raise
            except BaseException as exc:  # noqa: BLE001 — retried/failed
                last_exc = exc
                self._note_failure(tenant, time.monotonic() - t0)
                self._breaker_event(
                    tenant, breaker.record(False, probe=probe)
                )
                continue
            self._breaker_event(
                tenant, breaker.record(True, probe=probe)
            )
            self._complete(worker_id, tenant, [ticket], served, t0, t1)
            return
        error = RequestFailedError(
            tenant,
            ticket.request_seq,
            attempts + 1,  # the batch attempt plus the isolation runs
            cause=last_exc,
            detail="quarantined after a failed batch",
        )
        with self._stats_lock:
            self._failed += 1
            self._tenant_failed[tenant] += 1
        ticket._fail(error)

    def _complete(
        self,
        worker_id: int,
        tenant: str,
        batch: list[Ticket],
        served: list[RequestResult],
        t0: float,
        t1: float,
    ) -> None:
        """Success bookkeeping + fulfillment for one dispatch attempt."""
        service_s = t1 - t0
        with self._stats_lock:
            prev = self._service_s[tenant]
            self._service_s[tenant] = (
                service_s
                if prev is None
                else 0.5 * prev + 0.5 * service_s
            )
            self._span_history.append((service_s, len(batch)))
            self._completed += len(batch)
            self._batches += 1
            self._tenant_batches[tenant] += 1
            self._last_done_t = t1
            for ticket in batch:
                self._tenant_requests[tenant] += 1
                self._tenant_latencies[tenant].append(
                    t1 - ticket.enqueue_t
                )
                if t1 <= ticket.deadline_t:
                    self._tenant_hits[tenant] += 1
                else:
                    self._tenant_misses[tenant] += 1
        for ticket, rr in zip(batch, served):
            ticket._fulfill(
                DispatchResult(
                    result=rr,
                    tenant=tenant,
                    worker=worker_id,
                    queue_wait_s=t0 - ticket.enqueue_t,
                    latency_s=t1 - ticket.enqueue_t,
                    deadline_met=t1 <= ticket.deadline_t,
                    admit_t=ticket.enqueue_t,
                    start_t=t0,
                    complete_t=t1,
                )
            )

    def _note_failure(self, tenant: str, service_s: float) -> None:
        """Fold a *failed* attempt's duration into the EWMA estimate.

        Without this, a tenant whose requests always fault would freeze
        the estimate at its last healthy value and starve the
        autoscaler's drain model of the real (wasted) service time.
        """
        with self._stats_lock:
            prev = self._service_s[tenant]
            self._service_s[tenant] = (
                service_s
                if prev is None
                else 0.5 * prev + 0.5 * service_s
            )

    def _breaker_event(
        self, tenant: str, transition: str | None
    ) -> None:
        """Audit a circuit-breaker state change (``None`` = no change)."""
        if transition is None:
            return
        breaker = self._breakers[tenant]
        if transition == "open":
            self.control.record(
                "degrade",
                f"tenant {tenant!r}: circuit opened after repeated "
                f"failures; {breaker.primary!r} -> {breaker.fallback!r} "
                "(bit-exact, wall clock only)",
            )
        else:
            self.control.record(
                "restore",
                f"tenant {tenant!r}: probe succeeded; "
                f"{breaker.primary!r} restored",
            )

    def _worker_died(
        self, worker_id: int, batch: list[Ticket], exc: BaseException
    ) -> None:
        """Last rites for a worker dying mid-batch (called by the worker).

        Fails whatever tickets the batch still owes — a waiter must
        never hang on a thread that no longer exists — and audits the
        death.  Respawning is the supervisor's job.
        """
        pending = [t for t in batch if not t.done()]
        if pending:
            error = ServingError(
                f"worker {worker_id} crashed mid-batch ({exc!r}); "
                f"{len(pending)} request(s) were lost with it"
            )
            error.__cause__ = exc
            with self._stats_lock:
                self._failed += len(pending)
                for t in pending:
                    self._tenant_failed[t.tenant] += 1
            for t in pending:
                t._fail(error)
        self.control.record(
            "crash",
            f"worker {worker_id} died serving {batch[0].tenant!r}: "
            f"{exc!r} ({len(pending)} request(s) lost)",
        )

    def _rebuild_pool(self, broken, cause: BaseException) -> None:
        """Replace a broken process pool (dead child / severed pipe).

        Identity-checked under the pool lock: concurrent workers whose
        results all timed out against the same corpse rebuild it once,
        and latecomers see the fresh pool already in the slot.  The
        fork registries (sessions, injector) and frozen weights are
        dispatcher-scoped, not pool-scoped, so the new children inherit
        the same state the originals did.
        """
        rebuilt = False
        with self._pool_lock:
            if not self._closed and self._pool_box[0] is broken:
                broken.terminate()
                broken.join()
                ctx = multiprocessing.get_context("fork")
                self._pool_box[0] = ctx.Pool(processes=self.workers)
                rebuilt = True
        if rebuilt:
            with self._stats_lock:
                self._pool_rebuilds += 1
            self.control.record(
                "pool",
                f"process pool rebuilt after {cause!r}",
            )

    # ------------------------------------------------------------------ #
    # lifecycle / introspection
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> DispatchStats:
        """A consistent snapshot of the dispatcher's counters."""
        with self._stats_lock:
            per_tenant = {
                t: TenantStats(
                    requests=self._tenant_requests[t],
                    batches=self._tenant_batches[t],
                    deadline_hits=self._tenant_hits[t],
                    deadline_misses=self._tenant_misses[t],
                    latencies_s=tuple(self._tenant_latencies[t]),
                    failed=self._tenant_failed[t],
                    quarantined=self._tenant_quarantined[t],
                )
                for t in self.sessions
            }
            wall = 0.0
            if self._first_submit_t is not None and self._last_done_t:
                wall = max(0.0, self._last_done_t - self._first_submit_t)
            return DispatchStats(
                submitted=self._admitted,
                rejected=self.queue.rejected,
                completed=self._completed,
                failed=self._failed,
                batches=self._batches,
                peak_queue_depth=self.queue.peak_depth,
                wall_s=wall,
                per_tenant=per_tenant,
                plan_cache=self.plan_cache.stats,
                shed=self.queue.shed,
                workers=self._target_workers,
                config_epoch=self.control.epoch,
                audit=self.control.audit(),
                quarantined=self._quarantined,
                retries=self._retries,
                retry_denied=self._retry_denied,
                retry_budget=self._retry_budget.snapshot,
                planned_workers=self._planned_workers,
                worker_crashes=self._worker_crashes,
                pool_rebuilds=self._pool_rebuilds,
                degraded={
                    t: b.fallback
                    for t, b in self._breakers.items()
                    if b.state == "open"
                },
                unjoined_workers=self._unjoined_workers,
            )

    def close(self, timeout: float | None = 30.0) -> tuple[int, ...]:
        """Drain the queue, stop the workers, release the process pool.

        ``timeout`` is one **shared** deadline for the whole fleet, not
        a per-thread allowance (N threads each granted 30 s would make
        the worst-case close N x 30 s).  Workers drain what is already
        queued before exiting; any ticket still queued once the
        deadline passes is *failed* with :class:`ServingError` — a
        waiter must never deadlock on a dispatcher that shut down.
        Returns the ids of workers that failed to join in time (also
        surfaced as ``stats.unjoined_workers`` and audited); empty on a
        clean close.
        """
        if self._closed:
            return self._unjoined_workers
        self._closed = True
        self._supervisor_stop.set()
        self.queue.close()
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._scale_lock:
            threads = dict(self._threads)
        unjoined = []
        for wid, th in threads.items():
            if deadline is None:
                th.join()
            else:
                th.join(max(0.0, deadline - time.monotonic()))
            if th.is_alive():
                unjoined.append(wid)
        self._unjoined_workers = tuple(unjoined)
        if unjoined:
            self.control.record(
                "close",
                f"worker{'s' if len(unjoined) != 1 else ''} {unjoined} "
                f"failed to join within {timeout}s",
            )
        # whatever is still queued now has no worker left to serve it
        leftovers = self.queue.drain()
        if leftovers:
            with self._stats_lock:
                self._failed += len(leftovers)
                for t in leftovers:
                    self._tenant_failed[t.tenant] += 1
            error = ServingError(
                "dispatcher closed before this request could be "
                "served; submit to a live dispatcher (or close with a "
                "longer timeout to let the queue drain)"
            )
            for t in leftovers:
                t._fail(error)
        self._finalizer()  # idempotent: registry + pool teardown
        return self._unjoined_workers

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
