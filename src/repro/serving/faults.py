"""Seedable, deterministic fault injection for the serving layer.

The source paper's discipline for memory races — make the silent error
loud (:class:`~repro.errors.SegmentRaceError`) — applied to the whole
serving path: every failure mode the dispatcher claims to survive must
be *expressible* and *reproducible*, or the resilience code is untested
folklore.  This module is the expression half:

* a :class:`FaultPlan` declares faults against **named injection
  points** (:data:`SITES`) wired through the stack —
  ``"dispatch.request"`` per admitted request, ``"session.run_batch"``
  in :meth:`~repro.serving.session.Session.run_batch`,
  ``"backend.batched"`` / ``"backend.turbo"`` /
  ``"backend.turbo.gemm"`` inside the execution backends,
  ``"worker.loop"`` in the dispatcher's worker threads and
  ``"process.child"`` inside forked pool children;
* a :class:`FaultInjector` evaluates the plan at each point.  Decisions
  are **pure hash draws** over ``(seed, site, key)`` — no mutable RNG
  state — so the same plan poisons the same request keys whether the
  request runs co-batched, quarantined in isolation, retried, or
  re-dispatched to a freshly forked pool child in another process;
* with no plan the whole subsystem is a no-op: every hook is a
  thread-local read and a ``None`` check.

Fault kinds: ``"error"`` raises
:class:`~repro.errors.InjectedFaultError` (the poison-request /
flaky-backend case), ``"crash"`` raises
:class:`~repro.errors.WorkerCrashError` (kills a worker thread),
``"exit"`` hard-exits the process (``os._exit`` — a pool-child death),
``"hang"`` sleeps ``hang_s`` (a stuck dependency).

Deterministic helpers (:func:`stable_uniform`) are also what the retry
policy's jitter draws from, so a whole chaos run — faults, backoffs,
recovery order — replays bit-for-bit from one seed.
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ConfigError, InjectedFaultError, WorkerCrashError

__all__ = [
    "SITES",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "stable_uniform",
    "scope",
    "active_injector",
    "perhaps",
]

#: the named injection points wired through the serving stack
SITES = (
    "dispatch.request",    # Dispatcher: once per ticket per attempt
    "session.run_batch",   # Session.run_batch entry (any caller)
    "backend.batched",     # BatchedBackend.run_pipeline_batch
    "backend.turbo",       # TurboBackend.run_pipeline_batch (inherited)
    "backend.turbo.gemm",  # TurboBackend._gemm (the BLAS leaf)
    "worker.loop",         # dispatcher worker thread, before claiming work
    "process.child",       # forked pool child, before serving a request
)

#: fault kinds a spec may request
KINDS = ("error", "crash", "exit", "hang")


def stable_uniform(seed: int, *parts) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from ``(seed, parts)``.

    Pure function of its arguments (blake2b over the repr) — identical
    across threads, processes and reruns, which is what lets a fault
    plan poison the *same* request keys wherever and however often they
    are re-executed, and lets retry jitter replay bit-for-bit.
    """
    payload = repr((seed,) + parts).encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return struct.unpack("<Q", digest)[0] / 2.0**64


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault against a named injection point.

    Attributes
    ----------
    site:
        Injection point name (one of :data:`SITES`).
    kind:
        ``"error"`` | ``"crash"`` | ``"exit"`` | ``"hang"``.
    rate:
        Probability a matching draw fires, decided by
        :func:`stable_uniform` over ``(plan seed, site, key)`` — a key
        either is or is not poisoned, forever.
    keys:
        Restrict to specific context keys (request seqs at the request
        sites, worker ids at ``"worker.loop"``); ``None`` matches all.
    tenants:
        Restrict to specific tenants; ``None`` matches all.
    fail_attempts:
        Fire only while the context ``attempt`` is below this — models
        *transient* faults that succeed once quarantine/retry re-runs
        the request (``None`` = permanent: fires on every attempt).
    max_fires:
        Stop after this many fires (per process; counted by the
        injector).  Models a fault that clears on its own — e.g. a
        backend brown-out the circuit breaker should probe back from.
    hang_s:
        Sleep duration for ``kind="hang"``.
    message:
        Carried into the raised :class:`InjectedFaultError`.
    """

    site: str
    kind: str = "error"
    rate: float = 1.0
    keys: tuple[int, ...] | None = None
    tenants: tuple[str, ...] | None = None
    fail_attempts: int | None = None
    max_fires: int | None = None
    hang_s: float = 0.05
    message: str = "injected fault"

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on a bad spec."""
        if not self.site or not isinstance(self.site, str):
            raise ConfigError(f"fault site must be a name, got {self.site!r}")
        if self.kind not in KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; use one of {KINDS}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ConfigError(
                f"fault rate must be in [0, 1], got {self.rate}"
            )
        if self.fail_attempts is not None and self.fail_attempts <= 0:
            raise ConfigError(
                f"fail_attempts must be positive (or None for permanent), "
                f"got {self.fail_attempts}"
            )
        if self.max_fires is not None and self.max_fires <= 0:
            raise ConfigError(
                f"max_fires must be positive (or None for unbounded), "
                f"got {self.max_fires}"
            )
        if self.hang_s < 0:
            raise ConfigError(f"hang_s must be >= 0, got {self.hang_s}")

    def matches(
        self, key: int | None, tenant: str | None, attempt: int
    ) -> bool:
        """Whether this spec applies to the given firing context."""
        if self.keys is not None and key not in self.keys:
            return False
        if self.tenants is not None and tenant not in self.tenants:
            return False
        if self.fail_attempts is not None and attempt >= self.fail_attempts:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the declared faults — the whole chaos scenario.

    Immutable and cheap to share: the dispatcher, its sessions and every
    forked pool child evaluate the same plan and reach the same
    decisions for the same keys.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def validate(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigError(
                    f"FaultPlan.specs expects FaultSpec entries, "
                    f"got {type(spec).__name__}"
                )
            spec.validate()

    def with_spec(self, **spec_fields) -> "FaultPlan":
        """A copy with one more :class:`FaultSpec` appended."""
        return FaultPlan(
            seed=self.seed,
            specs=self.specs + (FaultSpec(**spec_fields),),
        )


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at the named injection points.

    Thread-safe; the only mutable state is the fire counters (used for
    ``max_fires`` bookkeeping and surfaced via :attr:`counts`).  The
    *decision* for a (site, key) pair is stateless — a pure hash draw —
    so isolation re-runs, retries and forked children all agree on which
    keys are poisoned.
    """

    def __init__(self, plan: FaultPlan):
        if isinstance(plan, FaultInjector):  # idempotent wrapping
            plan = plan.plan
        plan.validate()
        self.plan = plan
        self._lock = threading.Lock()
        self._site_fires: dict[str, int] = {}
        self._spec_fires: list[int] = [0] * len(plan.specs)

    # ------------------------------------------------------------------ #
    # decisions
    # ------------------------------------------------------------------ #
    def _draws(self, spec: FaultSpec, site: str, key: int | None) -> bool:
        """The stateless poisoned-or-not decision for one (site, key)."""
        if spec.rate >= 1.0:
            return True
        if spec.rate <= 0.0:
            return False
        return stable_uniform(self.plan.seed, site, key) < spec.rate

    def would_fire(
        self,
        site: str,
        *,
        key: int | None = None,
        tenant: str | None = None,
        attempt: int = 0,
    ) -> bool:
        """Whether :meth:`fire` would act, ignoring ``max_fires`` budgets."""
        return any(
            spec.site == site
            and spec.matches(key, tenant, attempt)
            and self._draws(spec, site, key)
            for spec in self.plan.specs
        )

    def preview(
        self,
        site: str,
        keys: Iterable[int],
        *,
        tenant: str | None = None,
        attempt: int = 0,
    ) -> tuple[int, ...]:
        """The subset of ``keys`` the plan poisons at ``site``.

        What a chaos test asserts against: *exactly these* requests may
        fail, everything else must succeed.
        """
        return tuple(
            k
            for k in keys
            if self.would_fire(site, key=k, tenant=tenant, attempt=attempt)
        )

    # ------------------------------------------------------------------ #
    # firing
    # ------------------------------------------------------------------ #
    def fire(
        self,
        site: str,
        *,
        key: int | None = None,
        tenant: str | None = None,
        attempt: int = 0,
    ) -> None:
        """Evaluate every matching spec at ``site``; act on the first hit.

        ``"error"`` raises :class:`InjectedFaultError`, ``"crash"``
        raises :class:`WorkerCrashError`, ``"exit"`` terminates the
        process (pool-child death), ``"hang"`` sleeps ``hang_s``
        (then continues — a slow dependency, not a failed one).
        """
        for i, spec in enumerate(self.plan.specs):
            if spec.site != site or not spec.matches(key, tenant, attempt):
                continue
            if not self._draws(spec, site, key):
                continue
            with self._lock:
                if (
                    spec.max_fires is not None
                    and self._spec_fires[i] >= spec.max_fires
                ):
                    continue
                self._spec_fires[i] += 1
                self._site_fires[site] = self._site_fires.get(site, 0) + 1
            if spec.kind == "hang":
                time.sleep(spec.hang_s)
                continue
            if spec.kind == "exit":
                os._exit(17)
            if spec.kind == "crash":
                raise WorkerCrashError(site, spec.message)
            raise InjectedFaultError(site, spec.message)

    @property
    def counts(self) -> Mapping[str, int]:
        """Fires per site so far (this process; a snapshot)."""
        with self._lock:
            return dict(self._site_fires)


# --------------------------------------------------------------------------- #
# thread-local injection scope
# --------------------------------------------------------------------------- #
# The execution backends sit below the serving layer and must not grow
# injector parameters through every signature; instead the dispatcher (or
# a session) establishes a scope around the numeric pass, and the hooks
# inside the backends read it.  Execution is synchronous within a worker
# thread, so thread-local state is exactly the right lifetime.
class _ScopeState(threading.local):
    injector: "FaultInjector | None" = None
    tenant: str | None = None
    key: int | None = None
    attempt: int = 0


_SCOPE = _ScopeState()


def active_injector() -> FaultInjector | None:
    """The injector of the innermost active :func:`scope` (or ``None``)."""
    return _SCOPE.injector


@contextmanager
def scope(
    injector: FaultInjector,
    *,
    tenant: str | None = None,
    key: int | None = None,
    attempt: int = 0,
):
    """Make ``injector`` (plus firing context) visible to nested hooks."""
    prev = (_SCOPE.injector, _SCOPE.tenant, _SCOPE.key, _SCOPE.attempt)
    _SCOPE.injector = injector
    _SCOPE.tenant = tenant
    _SCOPE.key = key
    _SCOPE.attempt = attempt
    try:
        yield injector
    finally:
        (
            _SCOPE.injector,
            _SCOPE.tenant,
            _SCOPE.key,
            _SCOPE.attempt,
        ) = prev


def perhaps(site: str, injector: FaultInjector | None = None) -> None:
    """Fire ``site`` against the scoped (or given) injector, if any.

    The hook the backends and :class:`~repro.serving.session.Session`
    call unconditionally — with no plan active it is a thread-local read
    and a ``None`` check, cheap enough for the serving hot path.
    """
    inj = injector if injector is not None else _SCOPE.injector
    if inj is None:
        return
    inj.fire(
        site,
        key=_SCOPE.key,
        tenant=_SCOPE.tenant,
        attempt=_SCOPE.attempt,
    )
