"""Plan-once/run-many serving: compile a model once, serve many requests.

A :class:`Session` freezes everything about a compiled model that does not
depend on the request:

* **plans** — already solved (and cached in the
  :class:`~repro.compiler.cache.PlanCache`) at compile time; the session
  never re-plans;
* **packed weights** — every stage weight is promoted to its int32 GEMM
  operand once through :func:`~repro.kernels.base.cached_pack` at session
  construction (mutating a weight array in place between requests triggers
  a re-pack via the cache's content digest; dropping the model evicts the
  entries via weakrefs);
* **cost template** — the per-stage analytic
  :class:`~repro.mcu.profiler.CostReport` sequence is derived once per
  segment plan and replayed for every request, so per-request cost
  accounting is a pointer copy yet stays bit-identical to
  ``execution="simulate"``.

What remains per request is exactly the arithmetic: one stacked int32 GEMM
per stage across the batch.  :meth:`Session.run` serves one request,
:meth:`Session.run_batch` a whole batch; both return
:class:`RequestResult`s carrying the output tensor(s) and a
:class:`RequestStats` (host latency, queue depth, modeled stage costs).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import CompileError, ServingError
from repro.kernels.base import cached_pack, get_execution_backend
from repro.mcu.profiler import CostReport
from repro.serving import faults as _faults

__all__ = ["RequestStats", "RequestResult", "SessionStats", "Session"]


def _model_structure(compiled) -> tuple:
    """A cheap structural fingerprint of a compiled model.

    Captures what the session froze at open time — per-segment stage
    types, names and weight geometry — so serving after a structural
    mutation (stages added/removed/re-bound to different shapes) fails
    loudly instead of silently replaying a stale cost template.  Weight
    *values* are deliberately excluded: in-place value mutation is legal
    and handled by ``cached_pack``'s content digest (a re-pack, not an
    error).
    """
    from repro.runtime.pipeline import stage_weight_arrays

    segs = []
    for seg in compiled.segments:
        stages = tuple(
            (
                type(stage).__name__,
                getattr(stage, "name", ""),
                tuple(
                    (w.shape, str(w.dtype))
                    for w in stage_weight_arrays(stage)
                ),
            )
            for stage in seg.pipeline.stages
        )
        segs.append(
            (seg.lowered.input_name, seg.lowered.output_name,
             len(seg.plan.stages), stages)
        )
    return tuple(segs)


@dataclass(frozen=True)
class RequestStats:
    """Per-request accounting attached to every served result."""

    #: monotonically increasing id over the session's lifetime
    request_id: int
    #: position of this request within its dispatched batch
    batch_index: int
    #: number of requests co-scheduled in the same dispatch (batch size)
    queue_depth: int
    #: host wall-clock seconds from dispatch to completion of the batch
    #: (co-scheduled requests finish together, so each waited this long)
    latency_s: float
    #: total modeled on-device cost — bit-identical to ``"simulate"``
    report: CostReport
    #: per-stage modeled cost, keyed by stage name
    stage_reports: Mapping[str, CostReport]


@dataclass(frozen=True)
class RequestResult:
    """One served request: outputs plus accounting."""

    #: the model's terminal output, shaped per the graph spec
    output: np.ndarray
    #: every graph output tensor by name
    outputs: dict[str, np.ndarray]
    stats: RequestStats


@dataclass
class SessionStats:
    """Aggregate counters over a session's lifetime."""

    requests: int = 0
    batches: int = 0
    wall_s: float = 0.0
    peak_queue_depth: int = 0

    @property
    def requests_per_s(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.requests / self.wall_s


class Session:
    """A warmed serving handle over one :class:`CompiledModel`.

    Build via :meth:`repro.compiler.compile.CompiledModel.serve` (or
    directly).  Construction performs every amortizable step — template
    derivation and weight packing — so the first request pays no warm-up.

    Parameters
    ----------
    compiled:
        The planned model to serve.
    execution:
        Name of the registered execution backend used for dispatch.  The
        default ``"batched"`` backend executes each stage as one stacked
        GEMM across the batch; ``"turbo"`` additionally runs the GEMMs
        at BLAS rate (still bit-exact); any registered backend works
        (falling back to per-request dispatch), which keeps the serving
        layer decoupled from any single backend implementation.
    max_batch:
        Upper bound on one ``run_batch`` dispatch.  The stacked
        activations of a batch are materialized at once, so an unbounded
        batch is a host-memory foot-gun; oversized batches are rejected
        with an actionable error instead of silently thrashing.
    faults:
        Optional :class:`~repro.serving.faults.FaultPlan` (or prepared
        :class:`~repro.serving.faults.FaultInjector`).  When given, the
        session evaluates the ``"session.run_batch"`` injection point on
        every dispatch — the hook chaos tests use to make a standalone
        session flaky.  ``None`` (the default) costs one ``is None``
        check per batch.

    Thread-safe: the numeric pass runs outside any lock (the GEMMs
    release the GIL), while request-id allocation and the aggregate
    counters are guarded — concurrent dispatcher workers sharing one
    session never tear the accounting.
    """

    def __init__(
        self,
        compiled,
        *,
        execution: str = "batched",
        max_batch: int = 256,
        faults: "_faults.FaultPlan | _faults.FaultInjector | None" = None,
    ):
        if max_batch <= 0:
            raise ServingError(
                f"max_batch must be positive, got {max_batch}"
            )
        self.compiled = compiled
        self.execution = execution
        self.max_batch = max_batch
        self._faults = (
            None if faults is None else _faults.FaultInjector(faults)
        )
        self._lock = threading.Lock()
        self._backend = get_execution_backend(execution)
        if not compiled.fits():
            raise CompileError(
                f"model {compiled.graph.name!r} needs "
                f"{compiled.footprint_bytes} B of SRAM but "
                f"{compiled.device.name} offers "
                f"{compiled.device.usable_sram_bytes} B usable"
            )
        self.stats = SessionStats()
        stage_names: list[str] = []
        stage_reports: list[CostReport] = []
        for seg in compiled.segments:
            if hasattr(self._backend, "pipeline_template"):
                # warms the backend's per-plan template cache; the plan
                # stays alive through compiled.segments, so replay at
                # dispatch time is a cache hit for the session's lifetime
                template = self._backend.pipeline_template(
                    seg.pipeline, seg.plan
                )
                stage_names.extend(sp.name for sp in seg.plan.stages)
                stage_reports.extend(template.stage_reports)
            self._pack_weights(seg.pipeline)
        if stage_reports:
            #: shared across requests: the modeled cost of serving one
            #: request is plan-determined, not data-determined
            self._stage_reports = dict(zip(stage_names, stage_reports))
            self._report = CostReport.combine(stage_reports, names=stage_names)
        else:
            self._stage_reports = None
            self._report = None
        #: what this session froze; checked before every dispatch
        self._structure = _model_structure(compiled)

    # ------------------------------------------------------------------ #
    # warm-up
    # ------------------------------------------------------------------ #
    def _pack_weights(self, pipeline) -> None:
        """Promote every stage weight once through the shared pack cache.

        Warms every operand layout the session's backend declares
        (``weight_packers``) — e.g. turbo's float64 BLAS operands in
        addition to the int32 ones — so the first request pays no
        packing cost.
        """
        from repro.kernels.base import pack_i32
        from repro.runtime.pipeline import stage_weight_arrays

        packers = getattr(self._backend, "weight_packers", None) or (
            pack_i32,
        )
        for stage in pipeline.stages:
            for w in stage_weight_arrays(stage):
                for packer in packers:
                    cached_pack(w, 0, packer)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def run(
        self,
        x: np.ndarray | None = None,
        *,
        feeds: Mapping[str, np.ndarray] | None = None,
        strict: bool = True,
    ) -> RequestResult:
        """Serve one request (a batch of one)."""
        if (x is None) == (feeds is None):
            raise CompileError("pass exactly one of x or feeds")
        request = x if feeds is None else feeds
        return self.run_batch([request], strict=strict)[0]

    def run_batch(
        self,
        requests: Sequence,
        *,
        strict: bool = True,
        execution: str | None = None,
    ) -> list[RequestResult]:
        """Serve a batch; element ``i`` of the result answers request ``i``.

        Each request is an input array (single-input models) or a
        ``{input name: array}`` feeds mapping.  Outputs and per-request
        cost reports are bit-identical to serving each request alone via
        ``CompiledModel.run`` — batching changes wall clock, never bits.

        ``execution`` overrides the session's backend for this one batch
        — how the dispatcher's circuit breaker degrades a failing
        ``"turbo"`` session to ``"batched"``/``"fast"`` without
        re-warming anything.  Every registered backend is bit-exact and
        the modeled cost is plan-determined, so the session's frozen
        cost template stays valid under the override.
        """
        if len(requests) == 0:
            raise CompileError("run_batch needs at least one request")
        _faults.perhaps("session.run_batch", self._faults)
        if len(requests) > self.max_batch:
            raise ServingError(
                f"batch of {len(requests)} exceeds this session's "
                f"max_batch={self.max_batch}; split the batch or open the "
                "session with a larger max_batch"
            )
        self._check_structure()
        graph = self.compiled.graph
        feeds_list: list[Mapping[str, np.ndarray]] = []
        for i, req in enumerate(requests):
            if isinstance(req, Mapping):
                feeds_list.append(req)
            elif len(graph.inputs) == 1:
                feeds_list.append({graph.inputs[0]: np.asarray(req)})
            else:
                raise CompileError(
                    f"request {i}: model {graph.name!r} has inputs "
                    f"{graph.inputs}; pass a feeds mapping per request"
                )

        t0 = time.perf_counter()
        bsz = len(feeds_list)
        per_request_outputs: list[dict[str, np.ndarray]] = [
            {} for _ in range(bsz)
        ]
        # only materialized for backends without a cost template
        per_request_reports: list[list[CostReport]] = [[] for _ in range(bsz)]
        stage_names: list[str] = []
        for seg in self.compiled.segments:
            name = seg.lowered.input_name
            xs = []
            for i, feeds in enumerate(feeds_list):
                if name not in feeds:
                    raise CompileError(
                        f"request {i}: missing feed for input {name!r}"
                    )
                xs.append(np.asarray(feeds[name]))
            results = seg.pipeline.run_batch(
                xs,
                plan=seg.plan,
                strict=strict,
                execution=execution or self.execution,
            )
            out_name = seg.lowered.output_name
            spec_shape = graph.tensors[out_name].spec.shape
            if self._report is None:
                stage_names.extend(sp.name for sp in seg.plan.stages)
            for i, res in enumerate(results):
                per_request_outputs[i][out_name] = res.output.reshape(
                    spec_shape
                )
                if self._report is None:
                    per_request_reports[i].extend(
                        r.report for r in res.stage_runs
                    )
        latency_s = time.perf_counter() - t0
        return self._assemble(
            per_request_outputs, per_request_reports, stage_names, latency_s
        )

    # ------------------------------------------------------------------ #
    # result assembly
    # ------------------------------------------------------------------ #
    def _check_structure(self) -> None:
        if _model_structure(self.compiled) != self._structure:
            raise ServingError(
                f"compiled model {self.compiled.graph.name!r} was "
                "structurally mutated after serve(); the session's frozen "
                "plans/cost template no longer describe it — open a new "
                "session (in-place *value* edits of existing weight arrays "
                "are fine and re-pack automatically)"
            )

    def package_results(
        self, outputs_list: Sequence[dict[str, np.ndarray]], *,
        latency_s: float,
    ) -> list[RequestResult]:
        """Wrap externally computed outputs in :class:`RequestResult`\\ s.

        Used by the dispatcher's ``workers="process"`` mode: child
        processes return raw output tensors (small IPC payload) and the
        parent attaches the session's cost template — valid because the
        modeled cost is plan-determined, not data-determined.  Requires a
        template-carrying backend (``"batched"``/``"turbo"``).
        """
        if self._report is None:
            raise ServingError(
                f"execution backend {self.execution!r} carries no cost "
                "template; package_results needs a template backend such "
                "as 'batched' or 'turbo'"
            )
        self._check_structure()
        return self._assemble(list(outputs_list), None, None, latency_s)

    def _assemble(
        self, per_request_outputs, per_request_reports, stage_names,
        latency_s,
    ) -> list[RequestResult]:
        graph = self.compiled.graph
        bsz = len(per_request_outputs)
        terminal = (
            graph.outputs[-1]
            if graph.outputs
            else self.compiled.segments[-1].lowered.output_name
        )
        with self._lock:
            first_id = self.stats.requests
            self.stats.requests += bsz
            self.stats.batches += 1
            self.stats.wall_s += latency_s
            self.stats.peak_queue_depth = max(
                self.stats.peak_queue_depth, bsz
            )
        served = []
        for i, outputs in enumerate(per_request_outputs):
            if self._report is not None:
                report, stage_reports = self._report, self._stage_reports
            else:
                report = CostReport.combine(
                    per_request_reports[i], names=stage_names
                )
                stage_reports = report.stages
            served.append(
                RequestResult(
                    output=outputs[terminal],
                    outputs=outputs,
                    stats=RequestStats(
                        request_id=first_id + i,
                        batch_index=i,
                        queue_depth=bsz,
                        latency_s=latency_s,
                        report=report,
                        stage_reports=stage_reports,
                    ),
                )
            )
        return served
