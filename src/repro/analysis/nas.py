"""NAS headroom search (Figures 11/12, Section 7.4).

vMCU frees RAM without retraining, which relaxes the memory constraint a
NAS would face: under the *same* RAM budget TinyEngine needs for the
original block, vMCU can afford a larger block.  Figure 11 grows the image
size (both H and W), Figure 12 the channel widths (both input and output,
with the expanded middle scaled proportionally).

The search is a straightforward monotone sweep: scale the block up integer
step by integer step while the vMCU footprint stays within the TinyEngine
budget, then report the largest feasible ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bottleneck import vmcu_block_ram
from repro.baselines.tinyengine import TinyEnginePlanner
from repro.compiler.cache import DEFAULT_PLAN_CACHE, PlanCache
from repro.core.multilayer import BottleneckSpec, InvertedBottleneckPlanner
from repro.errors import PlanError

__all__ = [
    "HeadroomResult",
    "scale_image",
    "scale_channels",
    "image_headroom",
    "channel_headroom",
]


@dataclass(frozen=True)
class HeadroomResult:
    """Largest scaled block that fits the TinyEngine budget under vMCU."""

    block: str
    axis: str  # "image" or "channel"
    budget_bytes: int
    base_value: int
    best_value: int
    vmcu_bytes_at_best: int

    @property
    def ratio(self) -> float:
        return self.best_value / self.base_value


def scale_image(spec: BottleneckSpec, hw: int) -> BottleneckSpec:
    """The same block at a different input image size."""
    return BottleneckSpec(
        name=spec.name, hw=hw, c_in=spec.c_in, c_mid=spec.c_mid,
        c_out=spec.c_out, kernel=spec.kernel, strides=spec.strides,
    )


def scale_channels(spec: BottleneckSpec, factor: float) -> BottleneckSpec:
    """Scale input/output/middle channels by ``factor`` (rounded, >= 1)."""
    def s(c: int) -> int:
        return max(int(round(c * factor)), 1)

    return BottleneckSpec(
        name=spec.name, hw=spec.hw, c_in=s(spec.c_in), c_mid=s(spec.c_mid),
        c_out=s(spec.c_out), kernel=spec.kernel, strides=spec.strides,
    )


def image_headroom(
    spec: BottleneckSpec,
    *,
    planner: InvertedBottleneckPlanner | None = None,
    max_ratio: float = 4.0,
    cache: PlanCache | None = DEFAULT_PLAN_CACHE,
) -> HeadroomResult:
    """Largest H/W (as a ratio of the original) vMCU affords in the
    TinyEngine budget for the original block.

    Every candidate plan is solved through the compiler's plan cache, so
    re-running the sweep (or sweeping overlapping block sets) re-solves
    nothing."""
    te_budget = TinyEnginePlanner().block_ram(spec)
    planner = planner or InvertedBottleneckPlanner()
    best = spec.hw
    best_bytes = vmcu_block_ram(spec, planner, cache=cache)
    if best_bytes > te_budget:
        raise PlanError(
            f"block {spec.name}: vMCU at base size already exceeds the "
            "TinyEngine budget — calibration constants are inconsistent"
        )
    for hw in range(spec.hw + 1, int(spec.hw * max_ratio) + 1):
        candidate = scale_image(spec, hw)
        if not candidate.fusable():
            continue
        b = vmcu_block_ram(candidate, planner, cache=cache)
        if b <= te_budget:
            best, best_bytes = hw, b
        else:
            break
    return HeadroomResult(
        block=spec.name, axis="image", budget_bytes=te_budget,
        base_value=spec.hw, best_value=best, vmcu_bytes_at_best=best_bytes,
    )


def channel_headroom(
    spec: BottleneckSpec,
    *,
    planner: InvertedBottleneckPlanner | None = None,
    max_ratio: float = 6.0,
    cache: PlanCache | None = DEFAULT_PLAN_CACHE,
) -> HeadroomResult:
    """Largest channel multiple vMCU affords in the TinyEngine budget.

    Channels grow in steps of the original ``c_in`` granularity's unit
    (1/8 of c_in, at least 1) so segment sizes stay aligned.
    """
    te_budget = TinyEnginePlanner().block_ram(spec)
    planner = planner or InvertedBottleneckPlanner()
    base = spec.c_in
    step = max(base // 8, 1)
    best_c = base
    best_bytes = vmcu_block_ram(spec, planner, cache=cache)
    if best_bytes > te_budget:
        raise PlanError(
            f"block {spec.name}: vMCU at base width already exceeds the "
            "TinyEngine budget — calibration constants are inconsistent"
        )
    c = base + step
    while c <= int(base * max_ratio):
        candidate = scale_channels(spec, c / base)
        b = vmcu_block_ram(candidate, planner, cache=cache)
        if b <= te_budget:
            best_c, best_bytes = c, b
        else:
            break
        c += step
    return HeadroomResult(
        block=spec.name, axis="channel", budget_bytes=te_budget,
        base_value=base, best_value=best_c, vmcu_bytes_at_best=best_bytes,
    )
