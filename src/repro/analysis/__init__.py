"""Whole-network analyses built on the planners and baselines.

* :mod:`repro.analysis.bottleneck` — per-block RAM sweeps over a network and
  the memory-bottleneck comparison of Figures 9/10.
* :mod:`repro.analysis.nas` — the Figure 11/12 headroom search: how much a
  block's image size or channel width can grow under vMCU before it uses as
  much RAM as TinyEngine needs for the original block.
"""

from repro.analysis.bottleneck import (
    BlockRow,
    NetworkComparison,
    compare_network,
    deployable_on,
)
from repro.analysis.nas import (
    HeadroomResult,
    channel_headroom,
    image_headroom,
    scale_channels,
    scale_image,
)

__all__ = [
    "BlockRow",
    "NetworkComparison",
    "compare_network",
    "deployable_on",
    "HeadroomResult",
    "channel_headroom",
    "image_headroom",
    "scale_channels",
    "scale_image",
]
