"""Parameter sweeps generalizing Figure 7 (an extension experiment).

The paper evaluates nine hand-picked pointwise layers.  The model behind
the reduction is simple — vMCU eliminates ``min(in, out)`` of the activation
bytes minus the solved distance — so the reduction should follow the
channel ratio ``K/C`` and saturate toward 50% as activations dominate fixed
overheads.  These sweeps map the full surface, which the ablation bench
plots as a table and the tests check for the predicted structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.tinyengine import TinyEnginePlanner
from repro.kernels.pointwise import PointwiseConvKernel

__all__ = ["SweepPoint", "channel_ratio_sweep", "image_size_sweep",
           "predicted_reduction"]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: workload plus both managers' footprints."""

    hw: int
    c: int
    k: int
    tinyengine_bytes: int
    vmcu_bytes: int

    @property
    def reduction(self) -> float:
        return 1.0 - self.vmcu_bytes / self.tinyengine_bytes


def predicted_reduction(hw: int, c: int, k: int) -> float:
    """First-order model: vMCU saves ~min(C, K)/(C + K) of the activations.

    Ignores the distance slack and fixed overheads, so it upper-bounds the
    measured reduction and converges to it as activations grow.
    """
    return min(c, k) / (c + k)


def _measure(hw: int, c: int, k: int) -> SweepPoint:
    te = TinyEnginePlanner()
    te_bytes = te.pointwise_ram(hw, hw, c, k)
    vm_bytes = (
        PointwiseConvKernel(hw, hw, c, k).plan().footprint_bytes
        + te.runtime_overhead_bytes
    )
    return SweepPoint(
        hw=hw, c=c, k=k, tinyengine_bytes=te_bytes, vmcu_bytes=vm_bytes
    )


def channel_ratio_sweep(
    *, hw: int = 40, c: int = 32, ratios: tuple[int, ...] = (1, 2, 4, 8)
) -> list[SweepPoint]:
    """Fix the input, sweep ``K = C * r`` and ``K = C / r``.

    Returns points ordered by ``K`` ascending.  The reduction peaks at
    ``K == C`` (~50%) and falls off symmetrically toward ``1/(1+r)``.
    """
    ks = sorted(
        {max(c // r, 1) for r in ratios} | {c * r for r in ratios}
    )
    return [_measure(hw, c, k) for k in ks]


def image_size_sweep(
    *, c: int = 16, k: int = 16, sizes: tuple[int, ...] = (6, 12, 24, 48, 80)
) -> list[SweepPoint]:
    """Fix the channels, sweep the image: overheads wash out as HW grows."""
    return [_measure(hw, c, k) for hw in sizes]
