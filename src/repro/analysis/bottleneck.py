"""Per-block RAM comparison across memory managers (Figures 9/10).

For every inverted bottleneck of a network this module computes the RAM
footprint under TinyEngine (tensor-level, in-place depthwise), HMCOS
(scheduling only) and vMCU (fused segment-level), identifies each manager's
memory bottleneck block, and answers the deployability question the paper
ends with: does the whole network fit a given device under each manager?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.hmcos import HMCOSScheduler
from repro.baselines.tinyengine import TinyEnginePlanner
from repro.compiler.cache import (
    DEFAULT_PLAN_CACHE,
    PlanCache,
    cached_block_plan,
)
from repro.core.multilayer import BottleneckSpec, InvertedBottleneckPlanner
from repro.graph.models import table2_specs
from repro.mcu.device import DeviceProfile

__all__ = ["BlockRow", "NetworkComparison", "compare_network", "deployable_on"]


@dataclass(frozen=True)
class BlockRow:
    """RAM footprints (bytes) of one block under the three managers."""

    name: str
    tinyengine: int
    hmcos: int
    vmcu: int

    @property
    def vmcu_vs_tinyengine(self) -> float:
        """Fractional reduction of vMCU vs TinyEngine (0.615 = -61.5%)."""
        return 1.0 - self.vmcu / self.tinyengine

    @property
    def vmcu_vs_hmcos(self) -> float:
        return 1.0 - self.vmcu / self.hmcos


@dataclass(frozen=True)
class NetworkComparison:
    """All blocks of one network plus per-manager bottlenecks."""

    network: str
    rows: tuple[BlockRow, ...]

    def bottleneck(self, manager: str) -> tuple[str, int]:
        """(block name, bytes) of the peak block under ``manager``."""
        key = manager.lower()
        getter = {
            "tinyengine": lambda r: r.tinyengine,
            "hmcos": lambda r: r.hmcos,
            "vmcu": lambda r: r.vmcu,
        }[key]
        row = max(self.rows, key=getter)
        return row.name, getter(row)

    @property
    def bottleneck_reduction_vs_tinyengine(self) -> float:
        """The headline number: 61.5% for VWW, 58.6% for ImageNet."""
        _, te = self.bottleneck("tinyengine")
        _, vm = self.bottleneck("vmcu")
        return 1.0 - vm / te

    @property
    def bottleneck_reduction_vs_hmcos(self) -> float:
        _, hm = self.bottleneck("hmcos")
        _, vm = self.bottleneck("vmcu")
        return 1.0 - vm / hm


def vmcu_block_ram(
    spec: BottleneckSpec,
    planner: InvertedBottleneckPlanner | None = None,
    *,
    runtime_overhead: int = TinyEnginePlanner.runtime_overhead_bytes,
    cache: PlanCache | None = DEFAULT_PLAN_CACHE,
) -> int:
    """vMCU footprint of one block including the shared runtime overhead.

    Planning goes through the compiler's plan cache (the process-wide one
    by default; ``cache=None`` disables memoization), so network
    comparisons and the NAS headroom sweeps solve each block geometry
    once per process.
    """
    planner = planner or InvertedBottleneckPlanner()
    plan = cached_block_plan(spec, planner, cache=cache)
    return plan.footprint_bytes + runtime_overhead


def compare_network(
    network: str,
    *,
    halo_mode: str = "cache_rows",
) -> NetworkComparison:
    """Build the Figure 9 / Figure 10 table for one network."""
    te = TinyEnginePlanner()
    hm = HMCOSScheduler()
    vm = InvertedBottleneckPlanner(halo_mode=halo_mode)
    rows = []
    for spec in table2_specs(network):
        rows.append(
            BlockRow(
                name=spec.name,
                tinyengine=te.block_ram(spec),
                hmcos=hm.block_ram(spec),
                vmcu=vmcu_block_ram(spec, vm),
            )
        )
    return NetworkComparison(network=network, rows=tuple(rows))


def deployable_on(
    comparison: NetworkComparison, device: DeviceProfile
) -> dict[str, bool]:
    """Whether the whole network fits the device under each manager.

    The network fits iff its bottleneck block fits: this is the paper's
    final argument (MCUNet-320KB-ImageNet deploys to the 128 KB part only
    under vMCU).
    """
    out = {}
    for manager in ("tinyengine", "hmcos", "vmcu"):
        _, peak = comparison.bottleneck(manager)
        out[manager] = peak <= device.sram_bytes
    return out
